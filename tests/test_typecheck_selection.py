"""Binding-type inference and selection typechecking (Section 5 / [28])."""

import pytest

from repro.data import bibliography_dtd
from repro.lang import pattern, match_count
from repro.regex import parse_regex
from repro.trees import decode, encode, u
from repro.typecheck import binding_type, typecheck_selection
from repro.xmlio import SpecializedDTD, parse_dtd


class TestBindingType:
    def test_simple_binding(self):
        dtd = bibliography_dtd()
        bindings = binding_type(dtd, "bib.book.author")
        assert bindings.accepts(encode(u("author")))

    def test_bindings_are_the_selected_subtrees(self):
        """For every instance and every match, the subtree is in the
        binding type; and the witness machinery produces members."""
        dtd = bibliography_dtd()
        for path in ("bib.book", "bib.book.author", "bib.book.title"):
            bindings = binding_type(dtd, path)
            shape = pattern(path)
            from repro.lang.patterns import match

            for document in dtd.instances(8):
                for binding in match(shape, document):
                    subtree = document.subtree(binding[0])
                    assert bindings.accepts(encode(subtree)), (path, subtree)

    def test_binding_type_is_tight(self):
        """No spurious members: every generated member is realizable as
        a selected subtree of some instance (spot check by label)."""
        dtd = bibliography_dtd()
        bindings = binding_type(dtd, "bib.book.author")
        members = list(bindings.generate(4))
        assert members
        for member in members:
            assert decode(member).label == "author"

    def test_unreachable_path_is_empty(self):
        dtd = bibliography_dtd()
        bindings = binding_type(dtd, "bib.author")  # authors sit under book
        assert bindings.is_empty()

    def test_star_paths(self):
        dtd = parse_dtd("r := r?.x\nx :=")  # recursive nesting of r
        bindings = binding_type(dtd, "r+.x")
        members = list(bindings.generate(3))
        assert members and all(decode(m).label == "x" for m in members)

    def test_specialized_decoupling_respected(self):
        """Binding types see through tag decoupling: only the reachable
        *type* contributes."""
        sdtd = SpecializedDTD(
            types={"A": "a", "B1": "b", "B2": "b", "C": "c", "D": "d"},
            content={
                "A": parse_regex("B1.B2"),
                "B1": parse_regex("C"),
                "B2": parse_regex("D"),
                "C": parse_regex("%"),
                "D": parse_regex("%"),
            },
            roots={"A"},
        )
        from repro.trees import u

        bindings = binding_type(sdtd, "a.b")
        # both b-types are selected: b(c) and b(d) are possible bindings
        assert bindings.accepts(encode(u("b", u("c"))))
        assert bindings.accepts(encode(u("b", u("d"))))
        assert not bindings.accepts(encode(u("b")))


class TestTypecheckSelection:
    def test_author_selection(self):
        dtd = bibliography_dtd()
        element = parse_dtd("author :=")
        result = typecheck_selection("bib.book.author", dtd, element)
        assert result.ok

    def test_book_selection_against_wrong_element(self):
        dtd = bibliography_dtd()
        element = parse_dtd("author :=")
        result = typecheck_selection("bib.book", dtd, element)
        assert not result.ok
        assert decode(result.witness_binding).label == "book"

    def test_book_selection_against_book_type(self):
        dtd = bibliography_dtd()
        element = parse_dtd(
            "book := title.author*.publisher?\ntitle :=\nauthor :=\n"
            "publisher :="
        )
        result = typecheck_selection("bib.book", dtd, element)
        assert result.ok

    def test_agrees_with_pebble_machine_bounded(self):
        """The dedicated checker and the generic 2-pebble machine agree
        (on the bounded engine's verdicts)."""
        from repro.lang import selection_transducer
        from repro.typecheck import typecheck

        dtd = bibliography_dtd()
        for element_text, path in [
            ("result := author*\nauthor :=", "bib.book.author"),
            ("result := title*\ntitle :=", "bib.book.author"),
        ]:
            output_dtd = parse_dtd(element_text)
            element_only = parse_dtd(
                element_text.split("\n", 1)[1]  # drop the result rule
            )
            fast = typecheck_selection(path, dtd, element_only)
            machine = selection_transducer(path, dtd.symbols, {"bib"})
            slow = typecheck(machine, dtd, output_dtd, method="bounded",
                             max_inputs=8)
            assert fast.ok == slow.ok
