"""Chaos tests: the batch executor under injected faults and hard kills.

The ISSUE 3 acceptance criteria, verbatim:

* with worker crashes injected on 30% of jobs, a 50-job batch completes
  with every job reported exactly once and verdicts identical to a
  fault-free run;
* SIGKILLing the batch *driver* midway and re-running with ``--resume``
  continues from the checkpoint without re-executing completed jobs;
* a deliberately pathological job (exponential-DTD exact typecheck with
  no cooperative budget) is SIGKILLed at its hard limit and reported
  ``timeout``/``oom`` while the rest of its batch finishes normally.

Everything here is deterministic: fault decisions are pure functions of
``(seed, point, job id, attempt)`` — seed 22 was chosen so that exactly
15/50 jobs (30%) crash on their first attempt and all recover within 4.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from collections import Counter

import pytest

from repro.errors import EXIT_CRASHED
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.supervisor import (
    OK,
    OOM,
    TIMEOUT,
    JobLimits,
    JobSpec,
    RetryPolicy,
    Supervisor,
    completed_job_ids,
)

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

TINY_DTD = "doc := item*\nitem :="
IDENTITY_SHEET = (
    '<xsl:template match="doc"><doc><xsl:apply-templates/></doc>'
    "</xsl:template>"
    '<xsl:template match="item"><item/></xsl:template>'
)
BROKEN_SHEET = (
    '<xsl:template match="doc"><doc><doc/></doc></xsl:template>'
    '<xsl:template match="item"><item/></xsl:template>'
)


def fifty_jobs() -> list[JobSpec]:
    """50 fast jobs with a deliberate mix of verdicts."""
    specs: list[JobSpec] = []
    for i in range(50):
        job_id = f"job-{i:02d}"
        bucket = i % 5
        if bucket == 0:
            specs.append(JobSpec(
                id=job_id, kind="typecheck",
                params={"stylesheet_text": IDENTITY_SHEET,
                        "input_dtd_text": TINY_DTD,
                        "output_dtd_text": TINY_DTD,
                        "method": "bounded", "max_inputs": 5},
            ))
        elif bucket == 1:
            specs.append(JobSpec(
                id=job_id, kind="typecheck",
                params={"stylesheet_text": BROKEN_SHEET,
                        "input_dtd_text": TINY_DTD,
                        "output_dtd_text": TINY_DTD,
                        "method": "bounded", "max_inputs": 5},
            ))
        elif bucket == 2:
            specs.append(JobSpec(
                id=job_id, kind="validate",
                params={"dtd_text": TINY_DTD,
                        "document_text": "<doc><bad/></doc>"},
            ))
        else:
            specs.append(JobSpec(
                id=job_id, kind="validate",
                params={"dtd_text": TINY_DTD,
                        "document_text": "<doc><item/><item/></doc>"},
            ))
    return specs


def results_by_id(path) -> dict:
    lines = [json.loads(line) for line in open(path) if line.strip()]
    return {line["id"]: line for line in lines}


def test_chaos_batch_reports_every_job_exactly_once(tmp_path):
    specs = fifty_jobs()

    # ground truth: the same batch with no faults armed
    clean = Supervisor().run_batch(specs, workers=4)
    clean_verdicts = {result.id: result.status for result in clean.results}
    assert len(clean_verdicts) == 50

    plan = FaultPlan(
        seed=22,
        points={"worker:result": FaultSpec(action="crash", rate=0.3)},
    )
    chaos_path = tmp_path / "chaos.jsonl"
    chaos = Supervisor(
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.1),
    ).run_batch(specs, workers=4, results_path=str(chaos_path))

    # exactly once: 50 results, 50 distinct ids, one log line each
    assert chaos.executed == 50
    logged = [json.loads(line) for line in open(chaos_path)]
    id_counts = Counter(line["id"] for line in logged)
    assert len(id_counts) == 50
    assert set(id_counts.values()) == {1}

    # the supervisor healed every injected crash: verdicts identical
    chaos_verdicts = {result.id: result.status for result in chaos.results}
    assert chaos_verdicts == clean_verdicts

    # and the chaos was real: 15/50 first attempts crashed (seed 22)
    first_attempt_crashes = sum(
        1 for result in chaos.results
        if result.history[0]["status"] == "crashed"
    )
    assert first_attempt_crashes == 15
    assert all(result.attempts <= 4 for result in chaos.results)


def test_killed_batch_resumes_without_recomputing(tmp_path):
    manifest = tmp_path / "manifest.jsonl"
    results = tmp_path / "results.jsonl"
    plan_path = tmp_path / "faults.json"
    specs = [
        JobSpec(
            id=f"slow-{i:02d}", kind="validate",
            params={"dtd_text": TINY_DTD,
                    "document_text": "<doc><item/></doc>"},
        )
        for i in range(12)
    ]
    manifest.write_text(
        "".join(json.dumps(spec.to_dict()) + "\n" for spec in specs)
    )
    # every job sleeps 0.25s so the driver dies with the batch mid-flight
    plan = FaultPlan(
        points={"worker:compute": FaultSpec(action="delay", seconds=0.25)}
    )
    plan_path.write_text(json.dumps(plan.to_dict()))

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "batch", str(manifest),
            "--results", str(results), "--workers", "2",
            "--faults", str(plan_path),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 filter(None, [SRC_DIR, os.environ.get("PYTHONPATH")])
             )},
    )
    try:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if len(completed_job_ids(str(results))) >= 3:
                break
            if process.poll() is not None:
                pytest.fail("batch finished before it could be killed")
            time.sleep(0.02)
        else:
            pytest.fail("batch produced no results to checkpoint")
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup
            process.kill()
            process.wait(timeout=10)

    snapshot = results.read_bytes()
    done_before = completed_job_ids(str(results))
    assert 0 < len(done_before) < 12

    report = Supervisor(fault_plan=plan).run_batch(
        specs, workers=2, results_path=str(results), resume=True
    )
    # checkpointed jobs were skipped, not re-executed...
    assert report.skipped == len(done_before)
    assert report.executed == 12 - len(done_before)
    assert {result.id for result in report.results}.isdisjoint(done_before)
    # ...their records were not rewritten...
    assert results.read_bytes().startswith(snapshot)
    # ...and after resume every job is recorded exactly once
    final = results_by_id(results)
    assert set(final) == {spec.id for spec in specs}
    assert all(line["status"] == OK for line in final.values())
    # a third run has nothing left to do
    again = Supervisor().run_batch(
        specs, workers=2, results_path=str(results), resume=True
    )
    assert again.executed == 0
    assert again.skipped == 12


def test_pathological_job_is_killed_while_batch_survives(
    tmp_path, pathological_typecheck
):
    """Theorem 4.8 in production: the blow-up dies, the batch does not."""
    specs = [pathological_typecheck("patho")] + [
        JobSpec(
            id=f"normal-{i}", kind="validate",
            params={"dtd_text": TINY_DTD,
                    "document_text": "<doc><item/></doc>"},
        )
        for i in range(4)
    ]
    results = tmp_path / "results.jsonl"
    report = Supervisor(
        limits=JobLimits(wall_seconds=2.0, rss_bytes=512 * 1024 * 1024),
        retry=RetryPolicy(max_attempts=1),
    ).run_batch(specs, workers=2, results_path=str(results))

    by_id = {result.id: result for result in report.results}
    assert by_id["patho"].status in (TIMEOUT, OOM)
    assert by_id["patho"].history[0]["killed_by"] in (
        "wall-limit", "rss-limit"
    )
    for i in range(4):
        assert by_id[f"normal-{i}"].status == OK
    assert report.exit_code() == EXIT_CRASHED
    # the log carries all five outcomes despite the kill
    assert set(results_by_id(results)) == {spec.id for spec in specs}
