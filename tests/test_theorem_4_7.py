"""Theorem 4.7: k-pebble automata accept exactly regular tree languages.

Three implementations are cross-validated here:

* AGAP acceptance on concrete trees (the semantics);
* the summary construction for tree-walking automata (k = 1);
* the general quantifier-block construction (any k), which embeds the
  paper's proof;
* the literal MSO formula of the proof, compiled generically (tiny cases).
"""

import random

import pytest

from repro.automata import bu_to_td
from repro.mso import sentence_automaton
from repro.pebble import (
    Branch0,
    Branch2,
    Move,
    PebbleAutomaton,
    Pick,
    Place,
    RuleSet,
    copy_transducer,
    is_walking,
    pebble_automaton_to_mso,
    pebble_automaton_to_ta,
    rotation_transducer,
    transducer_times_automaton,
    trim_pebble_automaton,
    walking_automaton_to_ta,
)
from repro.trees import RankedAlphabet, leaf, node, random_btree
from repro.typecheck import as_automaton
from repro.xmlio import parse_dtd

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def check_agreement(automaton, regular, rng, rounds=50, max_size=9):
    for _ in range(rounds):
        tree = random_btree(ALPHA, rng.randint(1, max_size), rng)
        assert automaton.accepts(tree) == regular.accepts(tree), str(tree)


def walking_machines():
    """A small zoo of 1-pebble automata."""
    zoo = {}

    rules = RuleSet()
    rules.add(None, "q", Move("down-left", "q"))
    rules.add(None, "q", Move("down-right", "q"))
    rules.add("b", "q", Branch0())
    zoo["exists-b-leaf"] = PebbleAutomaton(ALPHA, [["q"]], "q", rules)

    rules = RuleSet()
    rules.add(["f", "g"], "q", Branch2("l", "r"))
    rules.add(None, "l", Move("down-left", "q"))
    rules.add(None, "r", Move("down-right", "q"))
    rules.add("a", "q", Branch0())
    zoo["all-leaves-a"] = PebbleAutomaton(ALPHA, [["q", "l", "r"]], "q", rules)

    # a genuinely two-way machine: go to the leftmost leaf, then walk
    # back up checking every ancestor is labeled f.
    rules = RuleSet()
    rules.add(["f", "g"], "q", Move("down-left", "q"))
    rules.add(["a", "b"], "q", Move("stay", "up"))
    rules.add(None, "up", Move("up-left", "chk"))
    rules.add("f", "chk", Move("stay", "up"))
    rules.add("f", "chk", Branch0())  # may stop at any f... must reach root
    zoo["left-spine-f"] = PebbleAutomaton(
        ALPHA, [["q", "up", "chk"]], "q", rules
    )
    return zoo


class TestWalkingConstruction:
    @pytest.mark.parametrize("name", list(walking_machines()))
    def test_agrees_with_agap(self, name, rng):
        automaton = walking_machines()[name]
        assert is_walking(automaton)
        regular = walking_automaton_to_ta(automaton)
        check_agreement(automaton, regular, rng)

    def test_rejects_multi_pebble(self):
        rules = RuleSet()
        rules.add(None, "q", Place("p"))
        rules.add(None, "p", Branch0())
        automaton = PebbleAutomaton(ALPHA, [["q"], ["p"]], "q", rules)
        from repro.errors import PebbleMachineError

        with pytest.raises(PebbleMachineError):
            walking_automaton_to_ta(automaton)


class TestGeneralConstruction:
    def test_two_pebbles_agree_with_agap(self, rng):
        rules = RuleSet()
        rules.add(None, "p1", Move("down-left", "p1"))
        rules.add(None, "p1", Move("down-right", "p1"))
        rules.add(None, "p1", Place("p2"))
        rules.add(None, "p2", Move("down-left", "p2"), pebbles=(0,))
        rules.add(None, "p2", Move("down-right", "p2"), pebbles=(0,))
        rules.add(None, "p2", Move("stay", "lft"), pebbles=(1,))
        rules.add(["f", "g"], "lft", Move("down-left", "lft"), pebbles=None)
        rules.add("a", "lft", Pick("win"), pebbles=None)
        rules.add(None, "win", Branch0())
        automaton = PebbleAutomaton(
            ALPHA, [["p1", "win"], ["p2", "lft"]], "p1", rules
        )
        regular = pebble_automaton_to_ta(automaton)
        check_agreement(automaton, regular, rng, rounds=40)

    def test_trim_preserves_language(self, rng):
        machine = copy_transducer(ALPHA)
        tau = as_automaton(
            parse_dtd("a := a*"),  # dummy; build any type automaton
        )
        # build a product with unreachable states and trim it
        alpha2 = machine.output_alphabet
        always = walking_machines()["exists-b-leaf"]
        product = transducer_times_automaton(
            machine, bu_to_td(pebble_automaton_to_ta(always))
        )
        trimmed = trim_pebble_automaton(product)
        assert len(trimmed.level_of) <= len(product.level_of)
        for _ in range(25):
            tree = random_btree(ALPHA, rng.randint(1, 8), rng)
            assert product.accepts(tree) == trimmed.accepts(tree)


class TestLiteralMSO:
    def test_tiny_machine_via_mso(self, rng):
        """Compile the paper's literal formula for a tiny machine and
        compare with AGAP — the slow but faithful road of the proof."""
        rules = RuleSet()
        rules.add(None, "q", Move("down-left", "q"))
        rules.add("b", "q", Branch0())
        automaton = PebbleAutomaton(ALPHA, [["q"]], "q", rules)
        formula = pebble_automaton_to_mso(automaton)
        assert not formula.free_variables()
        regular = sentence_automaton(formula, ALPHA)
        for _ in range(25):
            tree = random_btree(ALPHA, rng.randint(1, 6), rng)
            assert regular.accepts(tree) == automaton.accepts(tree)

    def test_formula_shape(self):
        automaton = walking_machines()["all-leaves-a"]
        formula = pebble_automaton_to_mso(automaton)
        text = str(formula)
        assert "∀₂" in text          # the universal set-variable block
        assert "root" in text        # the S_{q0}(root) conclusion
