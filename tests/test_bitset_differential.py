"""Differential tests: bitset automata core vs. the frozenset oracle.

The integer-indexed, bitmask-based algebra (:mod:`repro.automata.bitset`
plus the rewritten ``BottomUpTA``/``DFA`` methods) must be observably
identical to the original frozenset implementations, which live on as an
executable oracle in :mod:`repro.automata.reference` behind the
``REPRO_REFERENCE_ALGEBRA`` switch.  Every rewritten operation is run
both ways on random inputs and compared on observable behavior:
membership over an enumerated tree/word sample, emptiness verdicts,
witness validity, and (for the worked examples) typechecking verdicts.

The memo table is cleared between the two runs — the whole point of the
shared fingerprints is that both representations produce *byte-identical
keys*, so without clearing, the second run would simply be handed the
first run's objects and the comparison would be vacuous.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import BottomUpTA
from repro.automata.bitset import reference_algebra
from repro.lang import (
    Apply,
    Out,
    Stylesheet,
    Template,
    q1_transducer,
    q2_stylesheet,
    xslt_to_transducer,
)
from repro.data import (
    q1_input_dtd,
    q1_inverse_dtd,
    q1_output_even_dtd,
    q2_good_output_dtd,
    q2_tight_output_dtd,
)
from repro.regex import EPSILON, compile_regex, star, sym, union, concat
from repro.runtime import clear_cache
from repro.trees import BTree, RankedAlphabet
from repro.typecheck import typecheck, typecheck_selection
from repro.xmlio import parse_dtd

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


# ---------------------------------------------------------------------------
# inputs
# ---------------------------------------------------------------------------


def _random_automaton(seed: int) -> BottomUpTA:
    """A reproducible random bottom-up automaton over ALPHA."""
    rng = random.Random(seed)
    n_states = rng.randint(1, 4)
    states = [f"s{i}" for i in range(n_states)]
    leaf_rules = {
        symbol: {s for s in states if rng.random() < 0.6}
        for symbol in sorted(ALPHA.leaves)
    }
    rules = {}
    for symbol in sorted(ALPHA.internals):
        for left in states:
            for right in states:
                targets = {s for s in states if rng.random() < 0.3}
                if targets:
                    rules[(symbol, left, right)] = targets
    accepting = {s for s in states if rng.random() < 0.5} or {states[0]}
    return BottomUpTA(ALPHA, states, leaf_rules, rules, accepting)


AUTOMATA = st.integers(min_value=0, max_value=120).map(_random_automaton)

REGEXES = st.recursive(
    st.one_of(st.just(EPSILON), st.sampled_from(["a", "b"]).map(sym)),
    lambda sub: st.one_of(
        st.builds(concat, sub, sub),
        st.builds(union, sub, sub),
        st.builds(star, sub),
    ),
    max_leaves=6,
)


def _sample_trees() -> list[BTree]:
    """A deterministic tree sample: everything up to depth 2, plus a few
    deeper random ones — enough to separate the languages random 1-4
    state automata can express."""
    leaves = [BTree(s) for s in sorted(ALPHA.leaves)]
    depth1 = [
        BTree(symbol, left, right)
        for symbol in sorted(ALPHA.internals)
        for left in leaves
        for right in leaves
    ]
    small = leaves + depth1
    depth2 = [
        BTree(symbol, left, right)
        for symbol in sorted(ALPHA.internals)
        for left in small
        for right in small
    ]
    rng = random.Random(7)

    def deep(depth: int) -> BTree:
        if depth == 0:
            return rng.choice(leaves)
        return BTree(
            rng.choice(sorted(ALPHA.internals)),
            deep(depth - 1),
            deep(rng.randint(0, depth - 1)),
        )

    return small + depth2 + [deep(4) for _ in range(12)]


TREE_SAMPLE = _sample_trees()

WORD_SAMPLE = [
    []
] + [
    list(word)
    for length in (1, 2, 3, 4)
    for word in __import__("itertools").product("ab", repeat=length)
]


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def _both_ways(op, *inputs):
    """Run ``op`` under the bitset core and under the oracle.

    The memo table is cleared around each run so neither mode can serve
    the other's objects (the fingerprints are identical by design).
    """
    clear_cache()
    with reference_algebra(False):
        bitset = op(*inputs)
    clear_cache()
    with reference_algebra(True):
        oracle = op(*inputs)
    clear_cache()
    return bitset, oracle


def _same_tree_language(one: BottomUpTA, two: BottomUpTA) -> None:
    for tree in TREE_SAMPLE:
        assert one.accepts(tree) == two.accepts(tree), tree
    # the full check, evaluated under the bitset core (it is itself
    # exercised against the sample above)
    assert one.equivalent(two)


def _same_word_language(one, two) -> None:
    for word in WORD_SAMPLE:
        assert one.accepts(word) == two.accepts(word), word


TA_UNARY = [
    ("determinized", lambda a: a.determinized()),
    ("determinized_subsets", lambda a: a.determinized(keep_subsets=True)),
    ("complemented", lambda a: a.determinized().complemented()),
    ("minimized", lambda a: a.minimized()),
    ("trimmed", lambda a: a.trimmed()),
]

TA_BINARY = [
    ("intersection", lambda a, b: a.intersection(b)),
    ("union", lambda a, b: a.union(b)),
    ("difference", lambda a, b: a.difference(b)),
    ("product_xor", lambda a, b: a.product(b, lambda x, y: x != y)),
]


class TestTreeAutomata:
    @pytest.mark.parametrize(
        "name,op", TA_UNARY, ids=[n for n, _ in TA_UNARY]
    )
    @given(automaton=AUTOMATA)
    @settings(max_examples=25, deadline=None)
    def test_unary(self, name, op, automaton):
        bitset, oracle = _both_ways(op, automaton)
        _same_tree_language(bitset, oracle)

    @pytest.mark.parametrize(
        "name,op", TA_BINARY, ids=[n for n, _ in TA_BINARY]
    )
    @given(one=AUTOMATA, two=AUTOMATA)
    @settings(max_examples=20, deadline=None)
    def test_binary(self, name, op, one, two):
        bitset, oracle = _both_ways(op, one, two)
        _same_tree_language(bitset, oracle)

    @given(automaton=AUTOMATA)
    @settings(max_examples=30, deadline=None)
    def test_emptiness_and_witness(self, automaton):
        bit_empty, ora_empty = _both_ways(lambda a: a.is_empty(), automaton)
        assert bit_empty == ora_empty
        bit_wit, ora_wit = _both_ways(lambda a: a.witness(), automaton)
        assert (bit_wit is None) == (ora_wit is None) == bit_empty
        if bit_wit is not None:
            assert automaton.accepts(bit_wit)
            assert automaton.accepts(ora_wit)

    @given(automaton=AUTOMATA)
    @settings(max_examples=25, deadline=None)
    def test_reachable_states(self, automaton):
        bitset, oracle = _both_ways(
            lambda a: a.reachable_states(), automaton
        )
        assert bitset == oracle

    @given(one=AUTOMATA, two=AUTOMATA)
    @settings(max_examples=20, deadline=None)
    def test_product_witness_matches_difference(self, one, two):
        """The on-the-fly product-emptiness routine agrees with the
        materialized difference (both modes)."""
        det = two.determinized()

        def leak(a, b):
            return a.product_witness(b.complemented())

        bit_wit, ora_wit = _both_ways(leak, one, det)
        empty = one.difference(det).trimmed().is_empty()
        assert (bit_wit is None) == empty
        assert (ora_wit is None) == empty
        for witness in (bit_wit, ora_wit):
            if witness is not None:
                assert one.accepts(witness)
                assert not det.accepts(witness)


class TestRegexAndDFA:
    @given(expr=REGEXES)
    @settings(max_examples=30, deadline=None)
    def test_compile(self, expr):
        bitset, oracle = _both_ways(
            lambda e: compile_regex(e, alphabet={"a", "b"}), expr
        )
        _same_word_language(bitset, oracle)

    @given(expr=REGEXES)
    @settings(max_examples=25, deadline=None)
    def test_minimized(self, expr):
        bitset, oracle = _both_ways(
            lambda e: compile_regex(e, alphabet={"a", "b"}).minimized(),
            expr,
        )
        _same_word_language(bitset, oracle)
        assert bitset.n_states == oracle.n_states

    @given(one=REGEXES, two=REGEXES)
    @settings(max_examples=20, deadline=None)
    def test_product(self, one, two):
        def build(e1, e2):
            d1 = compile_regex(e1, alphabet={"a", "b"})
            d2 = compile_regex(e2, alphabet={"a", "b"})
            return d1.difference(d2)

        bitset, oracle = _both_ways(build, one, two)
        _same_word_language(bitset, oracle)


class TestWorkedExamples:
    """Differential typecheck verdicts on the E04/E08/E10 examples."""

    def test_e04_selection(self):
        from repro.data import bibliography_dtd

        def check():
            return typecheck_selection(
                "bib.book.author", bibliography_dtd(), parse_dtd("author :=")
            )

        bitset, oracle = _both_ways(check)
        assert bitset.ok and oracle.ok

    def test_e08_inverse_directions(self):
        """T(a^n) ⊆ (b.b)* iff n is even: typechecking must fail from
        the full input type and pass from the (a.a)* inverse.  (Bounded
        method — Q1 takes two pebbles, so the exact pipeline pays the
        paper's hyperexponential price; the bench does the same.)"""
        machine = q1_transducer()

        def verdicts():
            failing = typecheck(
                machine, q1_input_dtd(), q1_output_even_dtd(),
                method="bounded", max_inputs=8,
            )
            passing = typecheck(
                machine, q1_inverse_dtd(), q1_output_even_dtd(),
                method="bounded", max_inputs=8,
            )
            return (failing.ok, passing.ok)

        bitset, oracle = _both_ways(verdicts)
        assert bitset == oracle == (False, True)

    def test_e10_wrap_stylesheet(self):
        sheet = Stylesheet([
            Template("doc", [Out("D", [Apply()])]),
            Template("sec", [Out("S", [Apply()])]),
            Template("par", [Out("P")]),
        ])
        machine = xslt_to_transducer(
            sheet, tags={"doc", "sec", "par"}, root_tag="doc"
        )
        tau1 = parse_dtd("doc := sec*\nsec := par*\npar :=")
        tau2 = parse_dtd("D := S*\nS := P*\nP :=")

        def verdict():
            return typecheck(machine, tau1, tau2, method="exact").ok

        bitset, oracle = _both_ways(verdict)
        assert bitset is True and oracle is True

    def test_e10_q2_both_verdicts(self):
        machine = xslt_to_transducer(
            q2_stylesheet(), tags={"root", "a"}, root_tag="root"
        )

        def good():
            return typecheck(
                machine, q1_input_dtd(), q2_good_output_dtd(),
                method="exact",
            ).ok

        def tight():
            result = typecheck(
                machine, q1_input_dtd(), q2_tight_output_dtd(),
                method="exact",
            )
            return (result.ok, result.counterexample_input is not None)

        bit_good, ora_good = _both_ways(good)
        assert bit_good is True and ora_good is True
        bit_tight, ora_tight = _both_ways(tight)
        assert bit_tight == ora_tight == (False, True)
