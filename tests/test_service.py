"""The typecheck service: pool lifecycle, routing, recycling, drain.

In-process daemons against real forked pool workers, covering the ISSUE
6 satellite explicitly — worker recycling on both triggers (N jobs and
the RSS watermark) and SIGTERM/``shutdown`` drain semantics (in-flight
jobs finish, queued jobs defer to the next daemon, exit is clean) — plus
cache-affinity routing, the per-affinity circuit breaker, the wall-limit
kill of a wedged worker (``pool:worker-wedge``), and the persistent tier
reporting disk hits in a served job's ``stats["cache"]``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.service import (
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
)
from repro.runtime.supervisor import (
    CRASHED,
    OK,
    TIMEOUT,
    TYPE_ERROR,
    JobLimits,
    JobSpec,
    completed_results,
)

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

TINY_DTD = "doc := item*\nitem :="
OTHER_DTD = "doc := leaf*\nleaf :="
IDENTITY_SHEET = (
    '<xsl:template match="doc"><doc><xsl:apply-templates/></doc>'
    "</xsl:template>"
    '<xsl:template match="item"><item/></xsl:template>'
)


def validate_job(job_id: str, dtd: str = TINY_DTD,
                 document: str = "<doc><item/></doc>") -> JobSpec:
    return JobSpec(
        id=job_id, kind="validate",
        params={"dtd_text": dtd, "document_text": document},
    )


def typecheck_job(job_id: str) -> JobSpec:
    return JobSpec(
        id=job_id, kind="typecheck",
        params={"stylesheet_text": IDENTITY_SHEET,
                "input_dtd_text": TINY_DTD,
                "output_dtd_text": TINY_DTD,
                "method": "exact"},
    )


@pytest.fixture
def make_daemon(tmp_path):
    daemons = []

    def factory(**kwargs) -> ServiceDaemon:
        kwargs.setdefault("directory", str(tmp_path / "state"))
        daemon = ServiceDaemon(ServiceConfig(**kwargs))
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        if not daemon._stopped.is_set():
            daemon.drain()


def worker_pid(response: dict) -> int:
    return response["result"]["detail"]["worker"]["pid"]


# -- the basic serve loop ----------------------------------------------------


def test_submit_roundtrip_over_the_socket(make_daemon):
    daemon = make_daemon(workers=2)
    client = ServiceClient(daemon.socket_path)

    pong = client.ping()
    assert pong["ok"] and pong["pid"] == os.getpid()

    good = client.submit(validate_job("good"))
    assert good["ok"]
    assert good["result"]["status"] == OK
    assert good["result"]["schema"] == "repro-job-result/v2"

    bad = client.submit(
        validate_job("bad", document="<doc><wrong/></doc>")
    )
    assert bad["result"]["status"] == TYPE_ERROR

    stats = client.stats()["stats"]
    assert stats["served"] == {OK: 1, TYPE_ERROR: 1}
    assert len(stats["workers"]) == 2

    # both results are journaled, exactly once each
    done = completed_results(str(daemon.results_path))
    assert set(done) == {"good", "bad"}


def test_malformed_requests_get_clean_errors(make_daemon):
    daemon = make_daemon(workers=1)
    client = ServiceClient(daemon.socket_path)
    assert not client.request({"op": "nonsense"})["ok"]
    response = client.request({"op": "submit", "job": {"id": "x",
                                                       "kind": "wat"}})
    assert not response["ok"]
    assert "unknown kind" in response["error"]


def test_client_raises_service_error_when_no_daemon(tmp_path):
    client = ServiceClient(tmp_path / "nothing.sock")
    with pytest.raises(ServiceError):
        client.ping()


def test_second_daemon_on_same_directory_is_refused(make_daemon, tmp_path):
    make_daemon(workers=1)
    contender = ServiceDaemon(ServiceConfig(
        directory=str(tmp_path / "state"),
        socket_path=str(tmp_path / "other.sock"),
    ))
    with pytest.raises(ServiceError, match="another daemon"):
        contender.start()


# -- affinity routing --------------------------------------------------------


def test_same_affinity_jobs_land_on_the_same_worker(make_daemon):
    daemon = make_daemon(workers=4)
    client = ServiceClient(daemon.socket_path)
    pids = {
        worker_pid(client.submit(validate_job(f"same-{i}")))
        for i in range(6)
    }
    assert len(pids) == 1  # every job found the warm worker


def test_affinity_key_depends_on_input_content(make_daemon):
    daemon = make_daemon(workers=2)
    slot_a = daemon._slot_for("typecheck:aaaa")
    assert slot_a == daemon._slot_for("typecheck:aaaa")  # deterministic
    jobs = [validate_job("a", dtd=TINY_DTD),
            validate_job("b", dtd=OTHER_DTD)]
    from repro.runtime.jobs import affinity_key
    keys = {affinity_key(spec.to_dict()) for spec in jobs}
    assert len(keys) == 2


# -- worker recycling --------------------------------------------------------


def test_worker_recycled_after_n_jobs(make_daemon):
    daemon = make_daemon(workers=1, recycle_jobs=2)
    client = ServiceClient(daemon.socket_path)
    pids = [worker_pid(client.submit(validate_job(f"n-{i}")))
            for i in range(4)]
    # jobs 1-2 on the first incarnation, 3-4 on its replacement
    assert pids[0] == pids[1]
    assert pids[2] == pids[3]
    assert pids[1] != pids[2]
    stats = client.stats()["stats"]
    assert stats["workers"][0]["recycles"] == 2


def test_worker_recycled_at_rss_watermark(make_daemon):
    # a 1-byte watermark: every job's worker exceeds it immediately
    daemon = make_daemon(workers=1, recycle_rss_bytes=1)
    client = ServiceClient(daemon.socket_path)
    first = worker_pid(client.submit(validate_job("w-1")))
    second = worker_pid(client.submit(validate_job("w-2")))
    assert first != second
    assert client.stats()["stats"]["workers"][0]["recycles"] >= 1


# -- supervision: wedge, crash, breaker --------------------------------------


def test_wall_limit_kills_wedged_worker_and_pool_recovers(make_daemon):
    plan = FaultPlan(seed=3, points={
        "pool:worker-wedge": FaultSpec(action="delay", seconds=30.0,
                                       rate=0.5),
    })
    wedged = next(f"wedge-{i}" for i in range(100)
                  if plan.decide("pool:worker-wedge", f"wedge-{i}#1"))
    clean = next(f"wedge-{i}" for i in range(100)
                 if not plan.decide("pool:worker-wedge", f"wedge-{i}#1"))
    daemon = make_daemon(workers=1, fault_plan=plan,
                         limits=JobLimits(wall_seconds=0.5))
    client = ServiceClient(daemon.socket_path)

    stuck = client.submit(JobSpec(id=wedged, **_valid_params()))
    assert stuck["result"]["status"] == TIMEOUT
    assert stuck["result"]["history"][0]["killed_by"] == "wall-limit"

    healthy = client.submit(JobSpec(id=clean, **_valid_params()))
    assert healthy["result"]["status"] == OK  # respawned and serving
    assert client.stats()["stats"]["workers"][0]["respawns"] >= 1


def _valid_params() -> dict:
    return {
        "kind": "validate",
        "params": {"dtd_text": TINY_DTD,
                   "document_text": "<doc><item/></doc>"},
    }


def test_breaker_fast_fails_a_repeatedly_lethal_input(make_daemon):
    plan = FaultPlan(points={
        "pool:worker-wedge": FaultSpec(action="crash", rate=1.0),
    })
    daemon = make_daemon(workers=1, fault_plan=plan, breaker_threshold=2,
                         backoff_base=0.01)
    client = ServiceClient(daemon.socket_path)

    first = client.submit(validate_job("lethal-1"))
    assert first["result"]["status"] == CRASHED
    assert "signal" in first["result"]["detail"]["error"]
    second = client.submit(validate_job("lethal-2"))
    assert second["result"]["status"] == CRASHED

    # the third identical input never reaches a worker
    third = client.submit(validate_job("lethal-3"))
    assert third.get("fast_failed")
    assert third["result"]["status"] == CRASHED
    assert third["result"]["attempts"] == 0
    assert "circuit breaker" in third["result"]["detail"]["error"]
    stats = client.stats()["stats"]
    assert stats["breaker"]["fast_failed"] == 1
    assert len(stats["breaker"]["open"]) == 1
    # fast-fails are final: journaled like any other outcome
    assert completed_results(str(daemon.results_path))[
        "lethal-3"]["status"] == CRASHED


# -- drain semantics ---------------------------------------------------------


def test_drain_finishes_in_flight_and_defers_queued(make_daemon, tmp_path):
    plan = FaultPlan(points={
        "pool:worker-wedge": FaultSpec(action="delay", seconds=0.6,
                                       rate=1.0),
    })
    daemon = make_daemon(workers=1, fault_plan=plan)
    in_flight = daemon.submit(validate_job("in-flight"), wait=False)
    queued = daemon.submit(validate_job("queued"), wait=False)
    assert in_flight == {"ok": True, "queued": "in-flight"}
    assert queued == {"ok": True, "queued": "queued"}

    time.sleep(0.15)  # let the worker pick up the first job
    daemon.drain()
    assert daemon._stopped.is_set()

    done = completed_results(str(daemon.results_path))
    assert done["in-flight"]["status"] == OK  # finished, not abandoned
    assert "queued" not in done  # deferred, not silently dropped

    # a submission *during* drain is journaled and acknowledged deferred
    late = daemon.submit(validate_job("late"))
    assert late == {"ok": True, "deferred": True, "id": "late"}

    # the next daemon replays exactly the deferred jobs
    second = ServiceDaemon(ServiceConfig(directory=str(tmp_path / "state")))
    info = second.start()
    try:
        assert info["replayed"] == 2
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            done = completed_results(str(second.results_path))
            if {"queued", "late"} <= set(done):
                break
            time.sleep(0.05)
        assert done["queued"]["status"] == OK
        assert done["late"]["status"] == OK
    finally:
        second.drain()
    # exactly-once: one result line per job across both daemon lives —
    # the replay did not re-execute the already-completed in-flight job
    lines = [line for line in
             second.results_path.read_text().splitlines() if line.strip()]
    assert len(lines) == 3


def test_sigterm_drains_the_daemon_to_a_clean_exit(tmp_path):
    state = tmp_path / "state"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dir", str(state),
         "--workers", "1"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 filter(None, [SRC_DIR, os.environ.get("PYTHONPATH")])
             )},
    )
    try:
        client = ServiceClient(state / "service.sock")
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            try:
                client.ping()
                break
            except ServiceError:
                time.sleep(0.05)
        else:
            pytest.fail("daemon never came up")
        assert client.submit(validate_job("before-term"))[
            "result"]["status"] == OK
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=20) == 0  # graceful drain exits 0
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup
            process.kill()
            process.wait(timeout=10)
    assert not (state / "service.sock").exists()  # socket tidied away
    done = completed_results(str(state / "results.jsonl"))
    assert done["before-term"]["status"] == OK


# -- the persistent tier, as seen by served jobs -----------------------------


def test_recycled_worker_reports_disk_cache_hits(make_daemon):
    # hydrate_limit=0 keeps warm values on disk only, so the second
    # job's lookups fall through to the persistent tier and are counted
    # there (with hydration they would surface as memory hits instead)
    daemon = make_daemon(workers=1, recycle_jobs=1, hydrate_limit=0)
    client = ServiceClient(daemon.socket_path)

    cold = client.submit(typecheck_job("tc-cold"), timeout=120.0)
    assert cold["result"]["status"] == OK
    cold_cache = cold["result"]["detail"]["stats"]["cache"]
    assert cold_cache["persistent"]["stores"] > 0

    warm = client.submit(typecheck_job("tc-warm"), timeout=120.0)
    assert warm["result"]["status"] == OK
    warm_cache = warm["result"]["detail"]["stats"]["cache"]
    assert worker_pid(cold) != worker_pid(warm)  # really a fresh fork
    assert warm_cache["persistent"]["hits"] > 0

    stats = client.stats()["stats"]
    assert stats["cache"]["entries"] > 0


def test_hydration_preloads_a_fresh_worker(make_daemon, tmp_path):
    daemon = make_daemon(workers=1)
    client = ServiceClient(daemon.socket_path)
    assert client.submit(typecheck_job("hy-1"), timeout=120.0)[
        "result"]["status"] == OK
    daemon.drain()

    second = ServiceDaemon(ServiceConfig(
        directory=str(tmp_path / "state"), workers=1
    ))
    second.start()
    try:
        stats = second.stats()
        assert stats["workers"][0]["hydrated"] > 0
    finally:
        second.drain()
