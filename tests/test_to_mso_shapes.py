"""Structural tests of the literal Theorem 4.7 formula (to_mso) —
including multi-pebble machines where full compilation is out of reach."""

from repro.mso import evaluate
from repro.pebble import (
    Branch0,
    Move,
    PebbleAutomaton,
    Pick,
    Place,
    RuleSet,
    pebble_automaton_to_mso,
)
from repro.trees import RankedAlphabet, leaf, node, random_btree

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f"})


def two_pebble_machine() -> PebbleAutomaton:
    rules = RuleSet()
    rules.add(None, "p1", Move("down-left", "p1"))
    rules.add(None, "p1", Place("p2"))
    rules.add(None, "p2", Move("down-right", "p2"), pebbles=(0,))
    rules.add("a", "p2", Pick("win"), pebbles=(1,))
    rules.add(None, "win", Branch0())
    return PebbleAutomaton(ALPHA, [["p1", "win"], ["p2"]], "p1", rules)


class TestFormulaShape:
    def test_sentence_is_closed(self):
        formula = pebble_automaton_to_mso(two_pebble_machine())
        assert formula.free_variables() == {}

    def test_nested_quantifier_blocks(self):
        """k = 2 yields a nested universal set-quantifier block (the
        place conjunct embeds phi^(2))."""
        formula = pebble_automaton_to_mso(two_pebble_machine())
        text = str(formula)
        # two distinct blocks of set quantifiers
        assert text.count("∀₂") >= 2
        # pebble-presence guards appear as node equalities (pebbles_b)
        assert "=" in text

    def test_formula_size_grows_with_k(self):
        one = RuleSet()
        one.add(None, "q", Move("down-left", "q"))
        one.add("a", "q", Branch0())
        automaton1 = PebbleAutomaton(ALPHA, [["q"]], "q", one)
        size1 = pebble_automaton_to_mso(automaton1).size()
        size2 = pebble_automaton_to_mso(two_pebble_machine()).size()
        assert size2 > size1

    def test_model_checking_small_trees(self):
        """The literal formula evaluates correctly under the brute-force
        MSO semantics — even for the 2-pebble machine, on tiny trees
        (2^n subsets make big trees infeasible, which is the point of
        the compiled routes)."""
        automaton = two_pebble_machine()
        formula = pebble_automaton_to_mso(automaton)
        for tree in [
            leaf("a"),
            leaf("b"),
            node("f", leaf("b"), leaf("a")),
        ]:
            assert evaluate(formula, tree) == automaton.accepts(tree), \
                str(tree)
