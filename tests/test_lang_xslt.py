"""The XSLT fragment: interpreter vs compiled 1-pebble transducer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PebbleMachineError
from repro.lang import (
    Apply,
    Out,
    Stylesheet,
    Template,
    apply_stylesheet,
    parse_stylesheet,
    q2_stylesheet,
    xslt_to_transducer,
)
from repro.pebble import evaluate
from repro.trees import UTree, decode, encode, u


def documents(tags=("sec", "par"), max_leaves=5):
    label = st.sampled_from(list(tags))
    body = st.recursive(
        label.map(UTree),
        lambda kids: st.builds(UTree, label, st.lists(kids, max_size=3)),
        max_leaves=max_leaves,
    )
    return st.builds(lambda children: UTree("doc", children),
                     st.lists(body, max_size=3))


WRAP_SHEET = Stylesheet([
    Template("doc", [Out("D", [Out("hdr"), Apply()])]),
    Template("sec", [Out("S", [Apply()]), Out("sep")]),
    Template("par", [Out("P")]),
])

DELETE_SHEET = Stylesheet([
    Template("doc", [Out("D", [Apply()])]),
    Template("sec", [Apply()]),     # unwrap sections entirely
    Template("par", [Out("P")]),
])


class TestInterpreter:
    def test_q2_shape(self):
        sheet = q2_stylesheet()
        document = u("root", u("a"), u("a"))
        output = apply_stylesheet(sheet, document)
        assert [c.label for c in output.children] == \
            ["b", "a", "a", "b", "a", "a", "b", "a", "a"]

    def test_multiple_roots_rejected(self):
        sheet = Stylesheet([Template("doc", [Out("X"), Out("Y")])])
        with pytest.raises(PebbleMachineError):
            apply_stylesheet(sheet, u("doc"))

    def test_missing_template(self):
        with pytest.raises(PebbleMachineError):
            apply_stylesheet(WRAP_SHEET, u("doc", u("unknown")))


class TestParser:
    def test_example_4_3_text(self):
        sheet = q2_stylesheet()
        assert set(sheet.templates) == {"root", "a"}
        assert sheet.templates["root"].n_applies() == 3
        assert sheet.output_tags() == {"result", "b", "a"}

    def test_apply_templates_spelling(self):
        sheet = parse_stylesheet(
            '<xsl:template match="doc"><out><xsl:apply-templates/></out>'
            "</xsl:template>"
        )
        assert sheet.templates["doc"].n_applies() == 1

    def test_duplicate_match_rejected(self):
        with pytest.raises(PebbleMachineError):
            Stylesheet([Template("a", []), Template("a", [])])


class TestCompiler:
    @pytest.mark.parametrize("sheet", [WRAP_SHEET, DELETE_SHEET])
    @given(document=documents())
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_interpreter(self, sheet, document):
        machine = xslt_to_transducer(sheet, tags={"doc", "sec", "par"},
                                     root_tag="doc")
        expected = apply_stylesheet(sheet, document)
        output = evaluate(machine, encode(document))
        assert output is not None
        assert decode(output) == expected

    @given(document=st.integers(min_value=0, max_value=5))
    @settings(max_examples=6, deadline=None)
    def test_q2_agrees(self, document):
        sheet = q2_stylesheet()
        machine = xslt_to_transducer(sheet, tags={"root", "a"},
                                     root_tag="root")
        tree = u("root", *[u("a")] * document)
        assert decode(evaluate(machine, encode(tree))) == \
            apply_stylesheet(sheet, tree)

    def test_single_pebble(self):
        machine = xslt_to_transducer(WRAP_SHEET, tags={"doc", "sec", "par"},
                                     root_tag="doc")
        assert machine.k == 1

    def test_multi_apply_only_at_root(self):
        sheet = Stylesheet([
            Template("doc", [Out("D", [Apply()])]),
            Template("sec", [Out("S", [Apply(), Apply()])]),
            Template("par", []),
        ])
        with pytest.raises(PebbleMachineError):
            xslt_to_transducer(sheet, tags={"doc", "sec", "par"},
                               root_tag="doc")

    def test_every_tag_needs_a_template(self):
        with pytest.raises(PebbleMachineError):
            xslt_to_transducer(WRAP_SHEET, tags={"doc", "sec", "par", "zzz"},
                               root_tag="doc")

    def test_root_body_must_be_single_element(self):
        sheet = Stylesheet([
            Template("doc", [Apply()]),
            Template("par", [Out("P")]),
        ])
        with pytest.raises(PebbleMachineError):
            xslt_to_transducer(sheet, tags={"doc", "par"}, root_tag="doc")
