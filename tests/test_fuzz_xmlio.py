"""Fuzzing the input layer: malformed text must fail *predictably*.

Satellite of the supervision PR: every parser entry point — XML, both
DTD notations, the regex notation, and the XSLT fragment — must either
return a parse or raise the repo's own :class:`ReproError` taxonomy.
``RecursionError`` / ``IndexError`` / ``KeyError`` escaping from a
parser is a crash, and under the batch supervisor a crash costs a whole
worker; a ``ParseError`` is a clean ``usage-error`` verdict.

The regression tests at the bottom pin the two escapes this fuzz run
originally found: unbounded recursion in the regex parser and an
infinite loop on an unterminated ``match=`` attribute in the XSLT
reader.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RegexParseError, ReproError, XMLParseError
from repro.lang import parse_stylesheet
from repro.regex import parse_regex
from repro.xmlio import parse_dtd, parse_dtd_xml, parse_xml

PARSERS = (parse_xml, parse_dtd, parse_dtd_xml, parse_regex,
           parse_stylesheet)

# plain unicode, markup-flavoured text, and mangled fragments of valid
# inputs — three generations of increasingly parser-shaped garbage
markup_alphabet = st.sampled_from(list("<>/!&;\"'= \n\tabPCDATA*|.~()#:"))
garbage = st.one_of(
    st.text(max_size=200),
    st.text(alphabet=markup_alphabet, max_size=200),
    st.binary(max_size=200).map(lambda b: b.decode("latin-1")),
)

SEEDS = [
    "<doc><item/></doc>",
    "doc := item*\nitem :=",
    "<!ELEMENT doc (item)*><!ELEMENT item EMPTY>",
    "a*.(b|c).~d",
    '<xsl:template match="doc"><doc/></xsl:template>',
]


@st.composite
def mangled_seed(draw):
    seed = draw(st.sampled_from(SEEDS))
    cut = draw(st.integers(0, len(seed)))
    insert = draw(st.text(alphabet=markup_alphabet, max_size=10))
    return seed[:cut] + insert + seed[cut:]


@pytest.mark.parametrize("parse", PARSERS, ids=lambda p: p.__name__)
@given(text=st.one_of(garbage, mangled_seed()))
@settings(max_examples=150, deadline=None)
def test_parsers_never_leak_internal_errors(parse, text):
    try:
        parse(text)
    except ReproError:
        pass  # the one acceptable failure mode


def test_deep_regex_nesting_is_a_parse_error_not_a_recursion_error():
    with pytest.raises(RegexParseError):
        parse_regex("(" * 20_000 + "a" + ")" * 20_000)


def test_deep_dtd_nesting_is_a_parse_error_not_a_recursion_error():
    with pytest.raises(ReproError):
        parse_dtd("doc := " + "(" * 20_000 + "a" + ")" * 20_000)


def test_deeply_negated_regex_is_a_parse_error():
    with pytest.raises(RegexParseError):
        parse_regex("~" * 20_000 + "a")


def test_pathologically_starred_regex_is_a_parse_error():
    with pytest.raises(RegexParseError):
        parse_regex("a" + "*" * 20_000)


def test_unterminated_xslt_match_attribute_raises_instead_of_hanging():
    # regression: this looped forever scanning for a closing quote
    with pytest.raises(XMLParseError):
        parse_stylesheet('<xsl:template match="a')


def test_unterminated_xslt_template_tag_raises():
    with pytest.raises(XMLParseError):
        parse_stylesheet("<xsl:template match=")
