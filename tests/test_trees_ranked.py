"""Unit tests for ranked binary trees and the indexed view (Section 2.1)."""

import random

import pytest
from hypothesis import given

from conftest import btrees
from repro.errors import TreeError
from repro.trees import (
    BTree,
    IndexedTree,
    RankedAlphabet,
    leaf,
    node,
    parse_btree,
    random_btree,
)


class TestConstruction:
    def test_leaf_and_node(self):
        tree = node("f", leaf("a"), leaf("b"))
        assert tree.size() == 3
        assert tree.height() == 1
        assert not tree.is_leaf
        assert tree.left.is_leaf

    def test_completeness_enforced(self):
        with pytest.raises(TreeError):
            BTree("f", BTree("a"), None)

    def test_label_partitions(self):
        tree = node("f", leaf("a"), node("g", leaf("a"), leaf("b")))
        assert tree.leaf_labels() == {"a", "b"}
        assert tree.internal_labels() == {"f", "g"}

    def test_validate_over(self, small_alphabet):
        tree = node("f", leaf("a"), leaf("b"))
        tree.validate_over(small_alphabet)
        bad = node("a", leaf("a"), leaf("b"))  # 'a' used as internal
        with pytest.raises(Exception):
            bad.validate_over(small_alphabet)


class TestAddressing:
    def test_walk_preorder(self):
        tree = node("f", node("g", leaf("a"), leaf("b")), leaf("a"))
        labels = [sub.label for sub, _ in tree.walk()]
        assert labels == ["f", "g", "a", "b", "a"]

    def test_subtree(self):
        tree = node("f", node("g", leaf("a"), leaf("b")), leaf("a"))
        assert tree.subtree((0, 1)).label == "b"

    def test_parse_roundtrip(self):
        text = "f(g(a,b),a)"
        assert str(parse_btree(text)) == text

    @given(btrees())
    def test_str_parse_roundtrip(self, tree):
        assert parse_btree(str(tree)) == tree


class TestIndexedTree:
    def test_structure(self):
        tree = node("f", node("g", leaf("a"), leaf("b")), leaf("a"))
        indexed = IndexedTree(tree)
        assert indexed.n == 5
        assert indexed.label(0) == "f"
        assert indexed.is_root(0)
        assert not indexed.is_root(1)
        # pre-order ids: 0=f, 1=g, 2=a, 3=b, 4=a
        assert indexed.left[0] == 1
        assert indexed.right[0] == 4
        assert indexed.parent[2] == 1
        assert indexed.side[2] == 0
        assert indexed.side[3] == 1

    @given(btrees())
    def test_subtree_reconstruction(self, tree):
        indexed = IndexedTree(tree)
        assert indexed.subtree(0) == tree

    @given(btrees())
    def test_addresses_resolve(self, tree):
        indexed = IndexedTree(tree)
        for node_id in indexed.node_ids():
            assert tree.subtree(indexed.address(node_id)).label == \
                indexed.label(node_id)

    @given(btrees())
    def test_parent_child_consistency(self, tree):
        indexed = IndexedTree(tree)
        for node_id in indexed.node_ids():
            if not indexed.is_leaf(node_id):
                assert indexed.parent[indexed.left[node_id]] == node_id
                assert indexed.parent[indexed.right[node_id]] == node_id


class TestRandomBTree:
    def test_respects_alphabet(self, small_alphabet, rng):
        for _ in range(20):
            tree = random_btree(small_alphabet, rng.randint(1, 20), rng)
            tree.validate_over(small_alphabet)

    def test_leaf_only_alphabet(self, rng):
        alphabet = RankedAlphabet(leaves={"a"}, internals=set())
        assert random_btree(alphabet, 10, rng) == leaf("a")

    def test_deterministic_with_seed(self, small_alphabet):
        one = random_btree(small_alphabet, 15, random.Random(5))
        two = random_btree(small_alphabet, 15, random.Random(5))
        assert one == two
