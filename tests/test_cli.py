"""Tests for the command-line interface."""

import pytest

from repro.cli import main

DTD_TEXT = """
a := b*.c.e
b :=
c := d*
d :=
e :=
"""

XML_TEXT = "<a> <b/> <b/> <c><d/></c> <e/> </a>"

SHEET_TEXT = """
<xsl:template match="doc"><out><xsl:apply-templates/></out></xsl:template>
<xsl:template match="item"><thing/></xsl:template>
"""

IN_DTD = "doc := item*\nitem :="
OUT_GOOD = "out := thing*\nthing :="
OUT_BAD = "out := thing+\nthing :="


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, text in [
        ("schema.dtd", DTD_TEXT),
        ("doc.xml", XML_TEXT),
        ("bad.xml", "<a><c/></a>"),
        ("sheet.xsl", SHEET_TEXT),
        ("in.dtd", IN_DTD),
        ("indoc.xml", "<doc><item/><item/></doc>"),
        ("good.dtd", OUT_GOOD),
        ("bad.dtd", OUT_BAD),
        ("xmlstyle.dtd", "<!ELEMENT a (b*, c, e)> <!ELEMENT b EMPTY> "
                         "<!ELEMENT c (d*)> <!ELEMENT d EMPTY> "
                         "<!ELEMENT e EMPTY>"),
    ]:
        path = tmp_path / name
        path.write_text(text)
        paths[name] = str(path)
    return paths


class TestValidate:
    def test_valid_document(self, files, capsys):
        assert main(["validate", "--dtd", files["schema.dtd"],
                     files["doc.xml"]]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_document(self, files, capsys):
        assert main(["validate", "--dtd", files["schema.dtd"],
                     files["bad.xml"]]) == 1
        assert "does not match" in capsys.readouterr().out

    def test_xml_style_dtd_autodetected(self, files):
        assert main(["validate", "--dtd", files["xmlstyle.dtd"],
                     files["doc.xml"]]) == 0


class TestRun:
    def test_applies_stylesheet(self, files, capsys):
        assert main(["run", "--stylesheet", files["sheet.xsl"],
                     files["indoc.xml"]]) == 0
        output = capsys.readouterr().out
        assert "<out>" in output and output.count("<thing/>") == 2


class TestTypecheck:
    def test_exact_pass(self, files, capsys):
        code = main(["typecheck", "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 0
        assert "typechecks" in capsys.readouterr().out

    def test_exact_fail_with_counterexample(self, files, capsys):
        code = main(["typecheck", "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["bad.dtd"], files["sheet.xsl"]])
        assert code == 1
        output = capsys.readouterr().out
        assert "DOES NOT typecheck" in output
        assert "<doc/>" in output  # the empty document is the witness

    def test_bounded_engine(self, files, capsys):
        code = main(["typecheck", "--method", "bounded",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 0
        assert "sample inputs" in capsys.readouterr().out

    def test_exact_verdict_is_labeled_a_proof(self, files, capsys):
        assert main(["typecheck", "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"],
                     files["sheet.xsl"]]) == 0
        assert "verdict: ok (exact proof)" in capsys.readouterr().out

    def test_bounded_verdict_is_labeled_not_a_proof(self, files, capsys):
        assert main(["typecheck", "--method", "bounded",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"],
                     files["sheet.xsl"]]) == 0
        assert "verdict: ok (bounded — not a proof)" in \
            capsys.readouterr().out

    def test_audit_witness_certifies_type_error(self, files, capsys):
        code = main(["typecheck", "--audit", "witness",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["bad.dtd"], files["sheet.xsl"]])
        assert code == 1  # a *certified* type error is still exit 1
        output = capsys.readouterr().out
        assert "DOES NOT typecheck" in output
        assert "audit: certified (mode=witness" in output

    def test_audit_full_certifies_ok(self, files, capsys):
        code = main(["typecheck", "--audit", "full",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 0
        output = capsys.readouterr().out
        assert "audit: certified (mode=full" in output
        assert "seed=" in output

    def test_audit_witness_skips_exact_ok(self, files, capsys):
        code = main(["typecheck", "--audit", "witness",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 0
        assert "audit: skipped" in capsys.readouterr().out

    def test_refuted_verdict_exits_6(self, files, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"points": {"audit:flip-verdict": {"action": "exception"}}}'
        )
        from repro.runtime.faults import FaultPlan, injected_faults
        import json as _json

        with injected_faults(
            FaultPlan.from_dict(_json.loads(plan.read_text()))
        ):
            code = main(["typecheck", "--audit", "witness",
                         "--input-dtd", files["in.dtd"],
                         "--output-dtd", files["good.dtd"],
                         files["sheet.xsl"]])
        assert code == 6
        captured = capsys.readouterr()
        assert "audit: failed" in captured.out
        assert "MISCOMPILED" in captured.err

    def test_budget_with_fallback_degrades(self, files, capsys):
        # the default --fallback turns an exhausted exact run into a
        # bounded verdict; the bad DTD still yields its counterexample.
        # --no-cache keeps the tiny budget meaningful: a warm memo table
        # would absorb the very work the budget is sized to interrupt.
        code = main(["typecheck", "--max-steps", "10", "--no-cache",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["bad.dtd"], files["sheet.xsl"]])
        assert code == 1
        captured = capsys.readouterr()
        assert "degraded to the bounded falsifier" in captured.err
        assert "DOES NOT typecheck" in captured.out

    def test_budget_without_fallback_exits_3(self, files, capsys):
        code = main(["typecheck", "--max-steps", "10", "--no-fallback",
                     "--no-cache",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 3
        assert "resource budget exhausted" in capsys.readouterr().err

    def test_generous_budget_changes_nothing(self, files, capsys):
        code = main(["typecheck", "--timeout", "60", "--max-steps", "10000000",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 0
        captured = capsys.readouterr()
        assert "typechecks" in captured.out
        assert "degraded" not in captured.err

    def test_no_cache_same_verdict_zero_hits(self, files, capsys):
        code = main(["typecheck", "--no-cache", "--cache-stats",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 0
        captured = capsys.readouterr()
        assert "typechecks" in captured.out
        assert "hits=0" in captured.err
        assert "enabled=no" in captured.err

    def test_cache_stats_reports_counters(self, files, capsys):
        code = main(["typecheck", "--cache-stats",
                     "--input-dtd", files["in.dtd"],
                     "--output-dtd", files["good.dtd"], files["sheet.xsl"]])
        assert code == 0
        captured = capsys.readouterr()
        line = next(l for l in captured.err.splitlines()
                    if l.startswith("cache: "))
        for counter in ("hits=", "misses=", "stores=", "evictions=",
                        "entries=", "bytes=", "enabled="):
            assert counter in line

    def test_cached_rerun_reports_hits(self, files, capsys):
        from repro.runtime import GLOBAL_CACHE, clear_cache

        previous = GLOBAL_CACHE.enabled
        GLOBAL_CACHE.enabled = True
        clear_cache()
        try:
            argv = ["typecheck", "--cache-stats",
                    "--input-dtd", files["in.dtd"],
                    "--output-dtd", files["good.dtd"], files["sheet.xsl"]]
            assert main(argv) == 0
            capsys.readouterr()
            assert main(argv) == 0
            captured = capsys.readouterr()
            assert "typechecks" in captured.out
            line = next(l for l in captured.err.splitlines()
                        if l.startswith("cache: "))
            hits = int(line.split("hits=")[1].split()[0])
            assert hits > 0
        finally:
            GLOBAL_CACHE.enabled = previous
            clear_cache()

    def test_run_respects_step_budget(self, files, capsys):
        code = main(["run", "--max-steps", "1",
                     "--stylesheet", files["sheet.xsl"], files["indoc.xml"]])
        assert code == 3
        assert "resource budget exhausted" in capsys.readouterr().err

    def test_library_error_reported(self, files, tmp_path, capsys):
        broken = tmp_path / "broken.dtd"
        broken.write_text("a = oops")
        code = main(["validate", "--dtd", str(broken), files["doc.xml"]])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, files, capsys):
        code = main(["validate", "--dtd", "/nonexistent.dtd",
                     files["doc.xml"]])
        assert code == 2


class TestAuditCommand:
    """``repro audit``: offline re-certification of a results log."""

    import json as _json

    def manifest_and_results(self, files, tmp_path, capsys):
        jobs = [
            {"id": "good", "kind": "typecheck",
             "params": {"stylesheet": files["sheet.xsl"],
                        "input_dtd": files["in.dtd"],
                        "output_dtd": files["good.dtd"]}},
            {"id": "bad", "kind": "typecheck",
             "params": {"stylesheet": files["sheet.xsl"],
                        "input_dtd": files["in.dtd"],
                        "output_dtd": files["bad.dtd"]}},
        ]
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            "".join(self._json.dumps(job) + "\n" for job in jobs)
        )
        results = tmp_path / "r.jsonl"
        assert main(["batch", str(manifest),
                     "--results", str(results)]) == 1
        capsys.readouterr()
        return manifest, results

    def test_clean_log_recertifies(self, files, tmp_path, capsys):
        manifest, results = self.manifest_and_results(
            files, tmp_path, capsys
        )
        code = main(["audit", str(results), "--manifest", str(manifest)])
        assert code == 0
        captured = capsys.readouterr()
        lines = [self._json.loads(line)
                 for line in captured.out.splitlines()]
        by_id = {line["id"]: line["audit"]["status"] for line in lines}
        assert by_id == {"good": "skipped", "bad": "certified"}
        assert "certified=1" in captured.err

    def test_full_mode_falsifies_ok_verdicts(self, files, tmp_path,
                                             capsys):
        manifest, results = self.manifest_and_results(
            files, tmp_path, capsys
        )
        code = main(["audit", str(results), "--manifest", str(manifest),
                     "--mode", "full"])
        assert code == 0
        assert "certified=2" in capsys.readouterr().err

    def test_tampered_log_exits_6(self, files, tmp_path, capsys):
        manifest, results = self.manifest_and_results(
            files, tmp_path, capsys
        )
        lines = [self._json.loads(line)
                 for line in results.read_text().splitlines()]
        for line in lines:
            if line["id"] == "bad":
                # forge a well-typed "counterexample": the replay must
                # refute it
                line["detail"]["counterexample_output"] = \
                    "<out><thing/></out>"
        results.write_text(
            "".join(self._json.dumps(line) + "\n" for line in lines)
        )
        code = main(["audit", str(results), "--manifest", str(manifest)])
        assert code == 6
        captured = capsys.readouterr()
        assert "failed=1" in captured.err
        assert "MISCOMPILED: bad" in captured.err

    def test_unmatched_records_are_reported(self, files, tmp_path,
                                            capsys):
        manifest, results = self.manifest_and_results(
            files, tmp_path, capsys
        )
        with open(results, "a") as handle:
            handle.write(self._json.dumps(
                {"id": "stranger", "status": "ok", "detail": {}}
            ) + "\n")
        code = main(["audit", str(results), "--manifest", str(manifest)])
        assert code == 0
        captured = capsys.readouterr()
        assert "unmatched=1" in captured.err
