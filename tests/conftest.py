"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.trees import BTree, RankedAlphabet, UTree


@pytest.fixture
def rng():
    return random.Random(20260707)


@pytest.fixture
def small_alphabet() -> RankedAlphabet:
    return RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def utrees(labels=("a", "b", "c"), max_leaves=6):
    """Hypothesis strategy for small unranked trees."""
    label = st.sampled_from(list(labels))
    return st.recursive(
        label.map(UTree),
        lambda children: st.builds(
            UTree, label, st.lists(children, max_size=3)
        ),
        max_leaves=max_leaves,
    )


def btrees(leaves=("a", "b"), internals=("f", "g"), max_leaves=6):
    """Hypothesis strategy for small complete binary trees."""
    leaf = st.sampled_from(list(leaves)).map(BTree)
    internal = st.sampled_from(list(internals))
    return st.recursive(
        leaf,
        lambda sub: st.builds(BTree, internal, sub, sub),
        max_leaves=max_leaves,
    )


def words(symbols=("a", "b"), max_size=6):
    """Hypothesis strategy for words."""
    return st.lists(st.sampled_from(list(symbols)), max_size=max_size)
