"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.trees import BTree, RankedAlphabet, UTree


@pytest.fixture
def rng():
    return random.Random(20260707)


@pytest.fixture
def small_alphabet() -> RankedAlphabet:
    return RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


@pytest.fixture
def pathological_typecheck():
    """Factory for supervised typecheck jobs whose *exact* run blows up.

    A copying stylesheet over a choice-heavy DTD (every element allows
    every other, E05-style exponential content models): the Theorem 4.7
    pipeline takes several seconds and >100 MB — far past any small hard
    limit — while carrying no cooperative budget of its own.
    """
    from repro.runtime.supervisor import JobSpec

    def build(job_id: str, n: int = 14) -> JobSpec:
        rules = ["r := " + ".".join(f"s{i}*" for i in range(n))]
        for i in range(n):
            rules.append(
                f"s{i} := (" + "|".join(f"s{j}" for j in range(n)) + ")*"
            )
        dtd_text = "\n".join(rules)
        sheet_text = "".join(
            f'<xsl:template match="{tag}">'
            f"<{tag}><xsl:apply-templates/></{tag}>"
            "</xsl:template>"
            for tag in ["r"] + [f"s{i}" for i in range(n)]
        )
        return JobSpec(
            id=job_id,
            kind="typecheck",
            params={
                "stylesheet_text": sheet_text,
                "input_dtd_text": dtd_text,
                "output_dtd_text": dtd_text,
                "method": "exact",
            },
        )

    return build


def utrees(labels=("a", "b", "c"), max_leaves=6):
    """Hypothesis strategy for small unranked trees."""
    label = st.sampled_from(list(labels))
    return st.recursive(
        label.map(UTree),
        lambda children: st.builds(
            UTree, label, st.lists(children, max_size=3)
        ),
        max_leaves=max_leaves,
    )


def btrees(leaves=("a", "b"), internals=("f", "g"), max_leaves=6):
    """Hypothesis strategy for small complete binary trees."""
    leaf = st.sampled_from(list(leaves)).map(BTree)
    internal = st.sampled_from(list(internals))
    return st.recursive(
        leaf,
        lambda sub: st.builds(BTree, internal, sub, sub),
        max_leaves=max_leaves,
    )


def words(symbols=("a", "b"), max_size=6):
    """Hypothesis strategy for words."""
    return st.lists(st.sampled_from(list(symbols)), max_size=max_size)
