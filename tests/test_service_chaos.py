"""Chaos tests: ``kill -9`` the daemon and assert clean recovery.

The acceptance bar from ISSUE 6: a SIGKILL at any injected fault point
loses no completed results and no committed cache segments — a restarted
daemon recovers from the on-disk state alone, replays the queue
exactly-once, and a repeated typecheck job reports a *persistent-tier*
cache hit (``--hydrate 0`` keeps warm values on disk so the hit is
attributed to the disk tier rather than hydrated memory).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ServiceError
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.service import ServiceClient
from repro.runtime.supervisor import CRASHED, OK, JobSpec, completed_results

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

TINY_DTD = "doc := item*\nitem :="
IDENTITY_SHEET = (
    '<xsl:template match="doc"><doc><xsl:apply-templates/></doc>'
    "</xsl:template>"
    '<xsl:template match="item"><item/></xsl:template>'
)


def validate_job(job_id: str) -> JobSpec:
    return JobSpec(
        id=job_id, kind="validate",
        params={"dtd_text": TINY_DTD,
                "document_text": "<doc><item/></doc>"},
    )


def typecheck_job(job_id: str) -> JobSpec:
    return JobSpec(
        id=job_id, kind="typecheck",
        params={"stylesheet_text": IDENTITY_SHEET,
                "input_dtd_text": TINY_DTD,
                "output_dtd_text": TINY_DTD,
                "method": "exact"},
    )


def start_serve(state_dir, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dir", str(state_dir),
         "--workers", "1", "--hydrate", "0", *extra],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 filter(None, [SRC_DIR, os.environ.get("PYTHONPATH")])
             )},
    )


def wait_for_daemon(socket_path, timeout: float = 30.0) -> ServiceClient:
    client = ServiceClient(socket_path)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.ping()
            return client
        except ServiceError:
            time.sleep(0.05)
    raise AssertionError("daemon never answered ping")


def wait_for_results(results_path, wanted: set, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = completed_results(str(results_path))
        if wanted <= set(done):
            return done
        time.sleep(0.05)
    raise AssertionError(
        f"jobs never finished: wanted {wanted}, have "
        f"{set(completed_results(str(results_path)))}"
    )


@pytest.fixture
def reaper():
    processes: list[subprocess.Popen] = []
    yield processes.append
    for process in processes:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def test_kill9_with_jobs_in_flight_replays_exactly_once(tmp_path, reaper):
    plan = FaultPlan(seed=11, points={
        "pool:worker-wedge": FaultSpec(action="delay", seconds=60.0,
                                       rate=0.5),
    })
    wedged = next(f"job-{i}" for i in range(100)
                  if plan.decide("pool:worker-wedge", f"job-{i}#1"))
    clean = next(f"job-{i}" for i in range(100)
                 if not plan.decide("pool:worker-wedge", f"job-{i}#1"))
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(plan.to_dict()))
    state = tmp_path / "state"

    first = start_serve(state, "--faults", str(plan_path))
    reaper(first)
    client = wait_for_daemon(state / "service.sock")
    # a completed job before the crash: its result line must survive
    done_before = client.submit(validate_job("done-before"))
    assert done_before["result"]["status"] == OK
    # one job wedges in-flight, one sits queued behind it
    assert client.submit(validate_job(wedged), wait=False)["ok"]
    assert client.submit(validate_job(clean), wait=False)["ok"]
    time.sleep(0.3)  # let the worker pick up the wedged job

    os.kill(first.pid, signal.SIGKILL)
    first.wait(timeout=10)

    # recovery is from on-disk state alone: journals + lock + segments
    second = start_serve(state)
    reaper(second)
    client = wait_for_daemon(state / "service.sock")
    done = wait_for_results(state / "results.jsonl",
                            {"done-before", wedged, clean})
    assert done["done-before"]["status"] == OK
    assert done[wedged]["status"] == OK
    assert done[clean]["status"] == OK
    assert client.stats()["stats"]["replayed"] == 2

    # exactly-once: one result line per job id, no duplicate replays
    ids = [json.loads(line)["id"] for line in
           (state / "results.jsonl").read_text().splitlines()
           if line.strip()]
    assert sorted(ids) == sorted(["done-before", wedged, clean])

    assert client.shutdown()["ok"]
    assert second.wait(timeout=30) == 0


def test_persistent_cache_stays_warm_across_kill9(tmp_path, reaper):
    state = tmp_path / "state"
    first = start_serve(state)
    reaper(first)
    client = wait_for_daemon(state / "service.sock")

    cold = client.submit(typecheck_job("tc-cold"), timeout=120.0)
    assert cold["result"]["status"] == OK
    cold_cache = cold["result"]["detail"]["stats"]["cache"]
    assert cold_cache["persistent"]["stores"] > 0
    assert cold_cache["persistent"]["hits"] == 0

    os.kill(first.pid, signal.SIGKILL)
    first.wait(timeout=10)

    second = start_serve(state)
    reaper(second)
    client = wait_for_daemon(state / "service.sock")
    warm = client.submit(typecheck_job("tc-warm"), timeout=120.0)
    assert warm["result"]["status"] == OK
    warm_cache = warm["result"]["detail"]["stats"]["cache"]
    assert warm_cache["persistent"]["hits"] > 0  # served from disk tier
    assert client.shutdown()["ok"]
    assert second.wait(timeout=30) == 0


def test_worker_killed_mid_cache_write_leaves_a_recoverable_cache(
    tmp_path, reaper
):
    # ``cache:torn-write`` crash: the pool worker SIGKILLs *itself*
    # between the fsynced first half of a record and its tail, leaving a
    # genuinely torn segment on disk.  The daemon classifies the job
    # crashed; the next daemon (and its fresh workers) must open the
    # cache cleanly, dropping only the torn tail.
    plan = FaultPlan(points={
        "cache:torn-write": FaultSpec(action="crash", rate=1.0),
    })
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(plan.to_dict()))
    state = tmp_path / "state"

    first = start_serve(state, "--faults", str(plan_path))
    reaper(first)
    client = wait_for_daemon(state / "service.sock")
    torn = client.submit(typecheck_job("tc-torn"), timeout=120.0)
    assert torn["result"]["status"] == CRASHED
    assert "signal" in torn["result"]["detail"]["error"]
    assert client.shutdown()["ok"]
    assert first.wait(timeout=30) == 0

    second = start_serve(state)
    reaper(second)
    client = wait_for_daemon(state / "service.sock")
    healthy = client.submit(typecheck_job("tc-after"), timeout=120.0)
    assert healthy["result"]["status"] == OK
    stats = client.stats()["stats"]
    assert stats["cache"]["entries"] > 0  # cache is clean and writable
    assert client.shutdown()["ok"]
    assert second.wait(timeout=30) == 0
