"""Governor/cache state must not leak across the process boundary.

Workers are forked from the batch driver, so without explicit hygiene a
child would inherit the parent's warm ``GLOBAL_CACHE`` (reporting bogus
hit rates) and whatever ambient governor the parent had installed.
``_worker_setup`` clears both; these tests pin that contract.
"""

from __future__ import annotations

from repro.runtime import (
    GLOBAL_CACHE,
    cache_stats,
    clear_cache,
    governed,
    make_governor,
)
from repro.runtime.jobs import execute_job
from repro.runtime.supervisor import OK, JobSpec, Supervisor

TINY_DTD = "doc := item*\nitem :="
IDENTITY_SHEET = (
    '<xsl:template match="doc"><doc><xsl:apply-templates/></doc>'
    "</xsl:template>"
    '<xsl:template match="item"><item/></xsl:template>'
)

TYPECHECK_PARAMS = {
    "stylesheet_text": IDENTITY_SHEET,
    "input_dtd_text": TINY_DTD,
    "output_dtd_text": TINY_DTD,
    "method": "exact",
}


def warm_parent_cache():
    clear_cache()
    GLOBAL_CACHE.reset_stats()
    execute_job({"kind": "typecheck", "params": dict(TYPECHECK_PARAMS)})
    stats = cache_stats()
    assert stats["entries"] > 0, "warm-up should populate the memo table"
    return stats


def test_worker_starts_with_a_cold_cache():
    warm_parent_cache()
    # in-process, a second identical run is served from the warm table
    rerun = execute_job(
        {"kind": "typecheck", "params": dict(TYPECHECK_PARAMS)}
    )
    assert rerun["stats"]["cache"]["misses"] == 0
    assert rerun["stats"]["cache"]["hits"] > 0

    # the same job under supervision computes from scratch: fork gave the
    # child a copy of the warm table, and _worker_setup threw it away
    result = Supervisor().run_job(
        JobSpec(id="cold", kind="typecheck",
                params=dict(TYPECHECK_PARAMS))
    )
    assert result.status == OK
    child = result.detail["stats"]["cache"]
    assert child["hits"] < child["misses"] + child["hits"]
    assert child["misses"] > 0, "child saw the parent's warm entries"


def test_sequential_jobs_each_report_fresh_counters():
    warm_parent_cache()
    supervisor = Supervisor()
    spec = JobSpec(id="j", kind="typecheck", params=dict(TYPECHECK_PARAMS))
    first = supervisor.run_job(spec)
    second = supervisor.run_job(spec)
    for result in (first, second):
        assert result.status == OK
        counters = result.detail["stats"]["cache"]
        # each worker is a fresh process: same cold-start profile
        assert counters["misses"] > 0
    assert (
        first.detail["stats"]["cache"]["misses"]
        == second.detail["stats"]["cache"]["misses"]
    )


def test_worker_jobs_do_not_mutate_the_parent_cache():
    warm_parent_cache()
    before = cache_stats()
    Supervisor().run_job(
        JobSpec(id="j", kind="typecheck", params=dict(TYPECHECK_PARAMS))
    )
    after = cache_stats()
    assert after["entries"] == before["entries"]
    assert after["misses"] == before["misses"]


def test_worker_ignores_parent_ambient_governor():
    # a strangling governor in the parent must not throttle the child:
    # _worker_setup resets the ambient governor to NULL_GOVERNOR, and the
    # job's own params are the only budget source inside the worker
    with governed(make_governor(max_steps=1)):
        result = Supervisor().run_job(
            JobSpec(id="j", kind="typecheck",
                    params=dict(TYPECHECK_PARAMS))
        )
    assert result.status == OK
