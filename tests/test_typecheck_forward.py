"""Forward type inference (the Related Work approach) vs the paper's
exact inverse method."""

from hypothesis import given, settings

from conftest import btrees
from repro.automata import BottomUpTA
from repro.data import q1_input_dtd, q1_inverse_dtd, q1_output_even_dtd
from repro.data.generators import flat_document
from repro.lang import q1_transducer, q2_stylesheet, xslt_to_transducer
from repro.pebble import (
    Emit0,
    Emit2,
    Move,
    PebbleTransducer,
    RuleSet,
    copy_transducer,
    evaluate,
    exponential_transducer,
)
from repro.trees import RankedAlphabet, encode, leaf, node
from repro.typecheck import approximate_image, typecheck, typecheck_forward

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def constant_output_machine() -> PebbleTransducer:
    """Always outputs f(a, b), whatever the input."""
    rules = RuleSet()
    rules.add(None, "q", Emit2("f", "l", "r"))
    rules.add(None, "l", Emit0("a"))
    rules.add(None, "r", Emit0("b"))
    return PebbleTransducer(ALPHA, ALPHA, [["q", "l", "r"]], "q", rules)


class TestApproximationSoundness:
    @given(btrees(max_leaves=5))
    @settings(max_examples=25, deadline=None)
    def test_image_contained(self, tree):
        """T(t) ⊆ L(approx) for every input — the defining property."""
        for machine in (copy_transducer(ALPHA), exponential_transducer(ALPHA),
                        constant_output_machine()):
            approximation = approximate_image(machine)
            output = evaluate(machine, tree)
            if output is not None:
                assert approximation.accepts(output)

    def test_q1_image_contained(self):
        machine = q1_transducer()
        approximation = approximate_image(machine)
        for n in range(5):
            output = evaluate(machine, encode(flat_document("root", "a", n)))
            assert approximation.accepts(output)


class TestForwardVsExact:
    def test_forward_certifies_constant_machine(self):
        machine = constant_output_machine()
        exactly_fab = BottomUpTA(
            alphabet=ALPHA,
            states={"qa", "qb", "top"},
            leaf_rules={"a": {"qa"}, "b": {"qb"}},
            rules={("f", "qa", "qb"): {"top"}},
            accepting={"top"},
        )
        result = typecheck_forward(machine, exactly_fab)
        assert result.ok

    def test_forward_fails_on_q1_where_inverse_succeeds(self):
        """The paper's Example 4.2 gap: forward inference must reject Q1
        against (b.b)* even from inputs (a.a)*, because its inferred
        type covers odd outputs; the input-aware method accepts."""
        machine = q1_transducer()
        forward = typecheck_forward(machine, q1_output_even_dtd())
        assert not forward.ok
        assert forward.witness is not None
        # ...while the input-aware check from the inverse type passes:
        exact_view = typecheck(machine, q1_inverse_dtd(),
                               q1_output_even_dtd(),
                               method="bounded", max_inputs=6)
        assert exact_view.ok

    def test_forward_fails_on_q2_where_exact_succeeds(self):
        """Example 4.3: Q2's image needs the three a-groups to have equal
        lengths; forward inference cannot know that."""
        from repro.data import q2_good_output_dtd
        from repro.xmlio import parse_dtd

        machine = xslt_to_transducer(q2_stylesheet(), tags={"root", "a"},
                                     root_tag="root")
        # a type requiring the three groups equal *and short*: outputs
        # b a^n b a^n b a^n with n <= 1
        tight = parse_dtd("result := (b.b.b)|(b.a.b.a.b.a)\na :=\nb :=")
        forward = typecheck_forward(machine, tight)
        assert not forward.ok  # the approximation has, e.g., b a b b
        exact = typecheck(machine, parse_dtd("root := a?\na :="), tight,
                          method="exact")
        assert exact.ok

    def test_forward_never_contradicts_exact_success(self):
        """forward ok ⇒ exact ok (soundness, on a machine where forward
        happens to be precise)."""
        machine = constant_output_machine()
        exactly_fab = BottomUpTA(
            alphabet=ALPHA,
            states={"qa", "qb", "top"},
            leaf_rules={"a": {"qa"}, "b": {"qb"}},
            rules={("f", "qa", "qb"): {"top"}},
            accepting={"top"},
        )
        assert typecheck_forward(machine, exactly_fab).ok
        result = typecheck(
            machine,
            BottomUpTA(ALPHA, {"any"}, {"a": {"any"}, "b": {"any"}},
                       {(s, "any", "any"): {"any"} for s in ("f", "g")},
                       {"any"}),
            exactly_fab,
            method="exact",
        )
        assert result.ok


class TestNoBestApproximation:
    def test_paper_argument_on_q1(self):
        """Example 4.2's argument: for any regular tau ⊇ image, removing
        one non-image tree gives a strictly better regular
        approximation — demonstrated concretely."""
        machine = q1_transducer()
        approximation = approximate_image(machine)
        image_samples = {
            evaluate(machine, encode(flat_document("root", "a", n)))
            for n in range(4)
        }
        # find a non-image tree inside the approximation: b^2 is not a
        # perfect-square count... b^2 IS 2 which is not a square -> good
        two_bs = encode(flat_document("result", "b", 2))
        assert approximation.accepts(two_bs)
        assert two_bs not in image_samples
        # tau' = approximation minus {two_bs} is regular, still contains
        # the image samples, and is strictly smaller.
        singleton = _singleton_automaton(two_bs, approximation.alphabet)
        better = approximation.difference(singleton)
        assert not better.accepts(two_bs)
        for sample in image_samples:
            assert better.accepts(sample)


def _singleton_automaton(tree, alphabet) -> BottomUpTA:
    """The regular language {tree}."""
    states = {}
    leaf_rules: dict = {}
    rules: dict = {}

    def build(node) -> object:
        if node in states:
            return states[node]
        name = ("n", len(states), node.label)
        states[node] = name
        if node.is_leaf:
            leaf_rules.setdefault(node.label, set()).add(name)
        else:
            left = build(node.left)
            right = build(node.right)
            rules.setdefault((node.label, left, right), set()).add(name)
        return name

    root = build(tree)
    return BottomUpTA(
        alphabet=alphabet,
        states=set(states.values()),
        leaf_rules=leaf_rules,
        rules=rules,
        accepting={root},
    )
