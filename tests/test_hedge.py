"""Hedge automata on unranked trees vs the binary encoding route."""

import pytest
from hypothesis import given, settings

from conftest import utrees
from repro.automata import dtd_to_automaton
from repro.automata.hedge import (
    HedgeAutomaton,
    hedge_to_binary,
    specialized_to_hedge,
)
from repro.data import paper_dtd
from repro.errors import AutomatonError
from repro.regex import parse_regex
from repro.trees import encode, parse_utree, u
from repro.xmlio import SpecializedDTD


def even_bs_hedge() -> HedgeAutomaton:
    """root(b...b) with an even number of b's — not a counting-free
    property, but regular."""
    return HedgeAutomaton(
        symbols={"root", "b"},
        states={"B", "R"},
        horizontal={
            ("b", "B"): parse_regex("%"),
            ("root", "R"): parse_regex("(B.B)*"),
        },
        accepting={"R"},
    )


class TestHedgeSemantics:
    def test_even_counting(self):
        automaton = even_bs_hedge()
        for n in range(6):
            tree = u("root", *[u("b")] * n)
            assert automaton.accepts(tree) == (n % 2 == 0)

    def test_states_of(self):
        automaton = even_bs_hedge()
        assert automaton.states_of(u("b")) == {"B"}
        assert automaton.states_of(u("root")) == {"R"}
        assert automaton.states_of(u("x")) if False else True

    def test_validation(self):
        with pytest.raises(AutomatonError):
            HedgeAutomaton(
                symbols={"a"}, states={"q"},
                horizontal={("a", "q"): parse_regex("zz")},  # non-state
                accepting={"q"},
            )
        with pytest.raises(AutomatonError):
            HedgeAutomaton(
                symbols={"a"}, states={"q"},
                horizontal={("a", "q"): parse_regex("~q")},  # generalized
                accepting={"q"},
            )


class TestEncodingTriangle:
    """hedge acceptance on t == binary automaton on encode(t)."""

    def test_even_bs_triangle(self):
        hedge = even_bs_hedge()
        binary = hedge_to_binary(hedge)
        for n in range(6):
            tree = u("root", *[u("b")] * n)
            assert binary.accepts(encode(tree)) == hedge.accepts(tree)

    @given(utrees(labels=("a", "b", "c", "d", "e"), max_leaves=5))
    @settings(max_examples=30, deadline=None)
    def test_paper_dtd_three_ways(self, tree):
        """DTD validity == hedge acceptance == binary acceptance."""
        dtd = paper_dtd()
        sdtd = SpecializedDTD.from_dtd(dtd)
        hedge = specialized_to_hedge(sdtd)
        binary_via_hedge = hedge_to_binary(hedge)
        binary_via_dtd = dtd_to_automaton(dtd)
        expected = dtd.is_valid(tree)
        assert hedge.accepts(tree) == expected
        assert binary_via_hedge.accepts(encode(tree)) == expected
        assert binary_via_dtd.accepts(encode(tree)) == expected

    def test_decoupled_types_triangle(self):
        sdtd = SpecializedDTD(
            types={"A": "a", "B1": "b", "B2": "b", "C": "c", "D": "d"},
            content={
                "A": parse_regex("B1.B2"),
                "B1": parse_regex("C"),
                "B2": parse_regex("D"),
                "C": parse_regex("%"),
                "D": parse_regex("%"),
            },
            roots={"A"},
        )
        hedge = specialized_to_hedge(sdtd)
        binary = hedge_to_binary(hedge)
        good = parse_utree("a(b(c), b(d))")
        bad = parse_utree("a(b(d), b(c))")
        assert hedge.accepts(good) and binary.accepts(encode(good))
        assert not hedge.accepts(bad) and not binary.accepts(encode(bad))

    def test_language_equivalence_via_automata(self):
        """The two binary routes (via hedge, via specialized DTD) give
        equivalent automata."""
        dtd = paper_dtd()
        sdtd = SpecializedDTD.from_dtd(dtd)
        one = hedge_to_binary(specialized_to_hedge(sdtd))
        two = dtd_to_automaton(dtd)
        assert one.trimmed().equivalent(two.trimmed())
