"""Cross-layer round-trip properties tying the subsystems together."""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import utrees
from repro.automata import bu_to_td, dtd_to_automaton, td_to_bu
from repro.data import paper_dtd
from repro.trees import decode, encode
from repro.typecheck import as_automaton, inverse_type
from repro.pebble import copy_transducer
from repro.xmlio import parse_dtd, parse_xml, to_xml


class TestCrossLayer:
    @given(utrees(labels=("a", "b", "c", "d", "e")))
    def test_xml_encode_roundtrip(self, tree):
        """XML text -> UTree -> BTree -> UTree -> XML text is stable."""
        text = to_xml(tree)
        assert to_xml(decode(encode(parse_xml(text)))) == text

    @given(st.integers(min_value=0, max_value=7))
    def test_dtd_instances_accepted_by_both_conversions(self, index):
        dtd = paper_dtd()
        automaton = dtd_to_automaton(dtd)
        back_and_forth = td_to_bu(bu_to_td(automaton))
        documents = list(dtd.instances(8))
        document = documents[index % len(documents)]
        assert automaton.accepts(encode(document))
        assert back_and_forth.accepts(encode(document))

    def test_inverse_type_of_copy_under_dtd(self):
        """inverse_type(copy, tau) ∩ encodings == tau for the identity:
        a DTD-level sanity check on the whole Thm 4.4 stack."""
        dtd = parse_dtd("r := x*\nx :=")
        tau = dtd_to_automaton(dtd)
        machine = copy_transducer(tau.alphabet)
        inverse = inverse_type(machine, tau)
        inverse = as_automaton(inverse, tau.alphabet)
        # inverse contains tau...
        assert inverse.includes(tau)
        # ...and agrees with tau on all encodings (outside encodings the
        # inverse may accept trees tau rejects only if the copy output
        # is also rejected — for the identity they coincide):
        assert inverse.equivalent(tau)
