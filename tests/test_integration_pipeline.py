"""End-to-end integration: a realistic publishing scenario.

A catalog document type is transformed by an XSLT stylesheet into an
HTML-flavored listing; the whole paper pipeline runs on it: parse,
validate, compile, evaluate, and statically typecheck (exact engine),
including a schema-evolution regression caught by the typechecker.
"""

import pytest

from repro import (
    decode,
    encode,
    parse_dtd,
    parse_xml,
    to_xml,
    typecheck,
    typecheck_forward,
)
from repro.lang import apply_stylesheet, parse_stylesheet, xslt_to_transducer
from repro.pebble import evaluate

CATALOG_DTD = """
catalog := product*
product := name.price.review*
name :=
price :=
review :=
"""

LISTING_DTD = """
listing := entry*
entry := label.stars*
label :=
stars :=
"""

STYLESHEET = """
<xsl:template match="catalog">
  <listing><xsl:apply-templates/></listing>
</xsl:template>
<xsl:template match="product">
  <entry><xsl:apply-templates/></entry>
</xsl:template>
<xsl:template match="name"><label/></xsl:template>
<xsl:template match="price"></xsl:template>
<xsl:template match="review"><stars/></xsl:template>
"""

DOCUMENT = """
<catalog>
  <product> <name/> <price/> <review/> <review/> </product>
  <product> <name/> <price/> </product>
</catalog>
"""


@pytest.fixture
def pipeline():
    catalog = parse_dtd(CATALOG_DTD)
    listing = parse_dtd(LISTING_DTD)
    sheet = parse_stylesheet(STYLESHEET)
    machine = xslt_to_transducer(sheet, tags=catalog.symbols,
                                 root_tag=catalog.root)
    return catalog, listing, sheet, machine


class TestPipeline:
    def test_document_flow(self, pipeline):
        catalog, listing, sheet, machine = pipeline
        document = parse_xml(DOCUMENT)
        assert catalog.is_valid(document)
        output = decode(evaluate(machine, encode(document)))
        assert output == apply_stylesheet(sheet, document)
        assert listing.is_valid(output)
        assert to_xml(output) == (
            "<listing><entry><label/><stars/><stars/></entry>"
            "<entry><label/></entry></listing>"
        )

    def test_static_typecheck_passes(self, pipeline):
        catalog, listing, _, machine = pipeline
        result = typecheck(machine, catalog, listing, method="exact")
        assert result.ok

    def test_schema_evolution_regression(self, pipeline):
        """The output schema evolves to require at least one review per
        entry; the typechecker catches the product-without-reviews case
        before any document does."""
        catalog, _, _, machine = pipeline
        strict = parse_dtd(
            "listing := entry*\nentry := label.stars+\nlabel :=\nstars :="
        )
        result = typecheck(machine, catalog, strict, method="exact")
        assert not result.ok
        witness = decode(result.counterexample_input)
        assert catalog.is_valid(witness)
        # the witness has a product with no reviews
        assert any(
            all(child.label != "review" for child in product.children)
            for product in witness.children
        )
        assert not strict.is_valid(decode(result.counterexample_output))

    def test_forward_inference_is_weaker_here(self, pipeline):
        """Forward inference cannot certify the listing DTD because the
        position-oblivious approximation loses the name/price/review
        order — the exact engine can."""
        catalog, listing, _, machine = pipeline
        forward = typecheck_forward(machine, listing)
        exact = typecheck(machine, catalog, listing, method="exact")
        assert exact.ok
        # forward's verdict is allowed to be weaker, never wrong:
        if forward.ok:
            assert exact.ok

    def test_input_outside_type_not_blamed(self, pipeline):
        """Typechecking quantifies over tau1 only: documents outside the
        input type are irrelevant even if the machine mangles them."""
        catalog, listing, _, machine = pipeline
        # a catalog with reviews before the name is invalid input
        weird = parse_xml("<catalog><product><review/><name/><price/>"
                          "</product></catalog>")
        assert not catalog.is_valid(weird)
        result = typecheck(machine, catalog, listing, method="exact")
        assert result.ok
