"""Tests for MSO on binary trees: syntax, semantics, and the compiler
(the engine behind Theorem 4.7)."""

import pytest
from hypothesis import given, settings

from conftest import btrees
from repro.errors import MSOError
from repro.mso import (
    And,
    Eq,
    In,
    Label,
    Leaf,
    Not,
    Or,
    Root,
    Subset,
    Succ,
    compile_formula,
    conj,
    evaluate,
    exists_fo,
    exists_so,
    forall_fo,
    forall_so,
    sentence_automaton,
)
from repro.mso.annotations import (
    annotate_tree,
    pack,
    strip_annotations,
    unpack,
)
from repro.trees import RankedAlphabet, leaf, node

BASE = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})
TREE = node("f", node("g", leaf("a"), leaf("b")), leaf("a"))


class TestAnnotations:
    def test_pack_unpack(self):
        assert unpack(pack("f", (0, 1))) == ("f", (0, 1))
        assert unpack(pack("f", ())) == ("f", ())

    def test_annotate_and_strip(self):
        annotated = annotate_tree(
            TREE, ["x", "S"], {"x": (0,), "S": [(0,), (1,)]}
        )
        assert annotated.label == pack("f", (0, 0))
        assert annotated.left.label == pack("g", (1, 1))
        assert strip_annotations(annotated) == TREE

    def test_missing_assignment(self):
        with pytest.raises(MSOError):
            annotate_tree(TREE, ["x"], {})


class TestSemantics:
    def test_atoms(self):
        assert evaluate(Label("f", "x"), TREE, {"x": ()})
        assert not evaluate(Label("f", "x"), TREE, {"x": (1,)})
        assert evaluate(Succ(1, "x", "y"), TREE, {"x": (), "y": (0,)})
        assert not evaluate(Succ(1, "x", "y"), TREE, {"x": (), "y": (1,)})
        assert evaluate(Root("x"), TREE, {"x": ()})
        assert evaluate(Leaf("x"), TREE, {"x": (1,)})
        assert evaluate(Eq("x", "y"), TREE, {"x": (0,), "y": (0,)})
        assert evaluate(In("x", "S"), TREE, {"x": (0,), "S": {(0,)}})
        assert evaluate(Subset("S", "T"), TREE,
                        {"S": {(0,)}, "T": {(0,), (1,)}})

    def test_quantifiers(self):
        has_b = exists_fo("x", Label("b", "x"))
        assert evaluate(has_b, TREE)
        assert not evaluate(has_b, leaf("a"))
        all_leaves_ab = forall_fo(
            "x", Not(Leaf("x")) | Label({"a", "b"}, "x")
        )
        assert evaluate(all_leaves_ab, TREE)

    def test_unbound_variable(self):
        with pytest.raises(MSOError):
            evaluate(Label("a", "x"), TREE)


class TestCompiler:
    @given(btrees(max_leaves=4))
    @settings(max_examples=30, deadline=None)
    def test_sentences_agree_with_semantics(self, tree):
        sentences = [
            exists_fo("x", Label("b", "x")),
            forall_fo("x", Label("f", "x").implies(
                exists_fo("y", And(Succ(1, "x", "y"), Label({"a"}, "y"))))),
            exists_so("S", exists_fo("x", And(Root("x"), In("x", "S")))),
            forall_fo(["x", "y"], Not(And(Succ(1, "x", "y"),
                                          And(Label("g", "x"),
                                              Label("b", "y"))))),
        ]
        for sentence in sentences:
            automaton = sentence_automaton(sentence, BASE)
            assert automaton.accepts(tree) == evaluate(sentence, tree)

    def test_free_variable_formula(self):
        compiled = compile_formula(Succ(2, "x", "y"), BASE)
        for x in [(), (0,)]:
            for y in [(0,), (1,), (0, 0), (0, 1)]:
                want = evaluate(Succ(2, "x", "y"), TREE, {"x": x, "y": y})
                assert compiled.accepts(TREE, {"x": x, "y": y}) == want

    def test_descendant_warmup(self):
        """The paper's warm-up: descendant via set quantification."""
        closed = forall_fo(["u", "v"], conj(
            Not(And(In("u", "S"), And(Succ(1, "u", "v"),
                                      Not(In("v", "S"))))),
            Not(And(In("u", "S"), And(Succ(2, "u", "v"),
                                      Not(In("v", "S"))))),
        ))
        descendant = forall_so("S", Not(And(In("x", "S"),
                                            And(closed,
                                                Not(In("y", "S"))))))
        compiled = compile_formula(descendant, BASE)
        nodes = [address for _, address in TREE.walk()]
        for x in nodes:
            for y in nodes:
                want = y[: len(x)] == x  # descendant-or-self
                assert compiled.accepts(TREE, {"x": x, "y": y}) == want

    def test_and_or_tree_warmup(self):
        """The paper's second warm-up: and/or trees evaluating to 1."""
        alphabet = RankedAlphabet(leaves={"0", "1"}, internals={"A", "O"})
        reverse_closed = conj(
            forall_fo(["x", "y"], Not(conj(
                Label("O", "x"),
                Or(And(Succ(1, "x", "y"), In("y", "S")),
                   And(Succ(2, "x", "y"), In("y", "S"))),
                Not(In("x", "S"))))),
            forall_fo(["x", "y", "z"], Not(conj(
                Label("A", "x"), Succ(1, "x", "y"), Succ(2, "x", "z"),
                In("y", "S"), In("z", "S"), Not(In("x", "S"))))),
            forall_fo("x", Not(conj(Label("1", "x"), Not(In("x", "S"))))),
        )
        value_one = forall_so("S", Not(And(
            reverse_closed,
            exists_fo("r", And(Root("r"), Not(In("r", "S")))),
        )))
        automaton = sentence_automaton(value_one, alphabet)

        def eval_circuit(tree):
            if tree.is_leaf:
                return tree.label == "1"
            left, right = eval_circuit(tree.left), eval_circuit(tree.right)
            return (left and right) if tree.label == "A" else (left or right)

        import random

        from repro.trees import random_btree

        rng = random.Random(3)
        for _ in range(30):
            tree = random_btree(alphabet, rng.randint(1, 9), rng)
            assert automaton.accepts(tree) == eval_circuit(tree)

    def test_sentence_requires_closed(self):
        with pytest.raises(MSOError):
            sentence_automaton(Label("a", "x"), BASE)
