"""Overload robustness: admission control, deadlines, brownout (ISSUE 8).

In-process daemons against real forked pool workers, like
``test_service.py``, but driven past capacity on purpose: bounded
backlogs shedding instead of queueing, ``deadline_ms`` propagation
(predicted-overrun at admission, expiry in queue, the cooperative
deadline inside the worker), the brownout pressure ladder and the
``health`` verb, slow-client socket timeouts, and the acceptance chaos
test — a 10× capacity burst that must crash nothing, journal every
admitted job exactly once, shed the rest explicitly, and recover to
``ready``.  The ``_CircuitBreaker`` half-open property test (hypothesis)
and the ``_LoadController`` / ``_CostEstimator`` unit tests live here
too, on virtual clocks.
"""

from __future__ import annotations

import json
import os
import socket
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EXIT_SHED
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.governor import clamp_timeout
from repro.runtime.jobs import affinity_key
from repro.runtime.service import (
    PRESSURE_LEVELS,
    QUEUE_SCHEMA,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    _CircuitBreaker,
    _CostEstimator,
    _LoadController,
)
from repro.runtime.supervisor import (
    OK,
    SHED,
    JobSpec,
    RetryPolicy,
    Supervisor,
    completed_results,
)
from repro.runtime.trace import Histogram

from test_service import TINY_DTD, make_daemon, validate_job  # noqa: F401

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def submit_burst(daemon: ServiceDaemon, count: int, *,
                 prefix: str = "burst") -> tuple[list[str], list[str]]:
    """Fire ``count`` non-waiting submissions; (admitted ids, shed ids)."""
    admitted, shed = [], []
    for index in range(count):
        spec = validate_job(f"{prefix}-{index}")
        response = daemon.submit(spec, wait=False)
        assert response["ok"]
        if response.get("queued"):
            admitted.append(spec.id)
        else:
            assert response["result"]["status"] == SHED
            shed.append(spec.id)
    return admitted, shed


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


# -- admission control -------------------------------------------------------


def test_zero_backlog_sheds_everything(make_daemon):
    daemon = make_daemon(workers=1, max_backlog=0, brownout=False)
    response = daemon.submit(validate_job("refused"))
    assert response["ok"] and response["shed"] == "backlog"
    result = response["result"]
    assert result["status"] == SHED
    assert result["attempts"] == 0
    assert result["detail"]["shed"] == "backlog"
    # the shed is journaled (results log), but never queued for replay
    assert "refused" in completed_results(str(daemon.results_path))
    assert daemon.queue_path.read_text() == ""
    assert daemon.stats()["shed"] == {"backlog": 1}


def test_backlog_cap_sheds_beyond_capacity_under_a_storm(make_daemon):
    # a delay at pool:backlog-storm stalls the single slot, so the
    # burst piles up against max_backlog deterministically
    plan = FaultPlan(points={
        "pool:backlog-storm": FaultSpec(action="delay", seconds=0.2),
    })
    daemon = make_daemon(workers=1, max_backlog=2, brownout=False,
                         fault_plan=plan)
    admitted, shed = submit_burst(daemon, 8)
    assert shed, "a 4x-capacity burst must shed"
    # bounded memory by construction: never more than the cap in queue
    assert daemon._queues[0].qsize() <= 2
    wait_until(lambda: set(admitted) <= set(
        completed_results(str(daemon.results_path))))
    done = completed_results(str(daemon.results_path))
    for job_id in admitted:
        assert done[job_id]["status"] == OK
    for job_id in shed:
        assert done[job_id]["status"] == SHED


def test_replay_is_never_shed_by_the_backlog_cap(make_daemon, tmp_path):
    # admitted-and-journaled work survives a restart even when the new
    # daemon's cap is smaller than the replayed backlog
    directory = tmp_path / "replay-state"
    directory.mkdir()
    with open(directory / "queue.jsonl", "w", encoding="utf-8") as handle:
        for index in range(4):
            spec = validate_job(f"replay-{index}")
            handle.write(json.dumps(
                {"schema": QUEUE_SCHEMA, "spec": spec.to_dict()}
            ) + "\n")
    daemon = make_daemon(directory=str(directory), workers=1, max_backlog=1,
                         brownout=False)
    assert daemon.replayed == 4
    wait_until(lambda: len(
        completed_results(str(daemon.results_path))) == 4)


# -- deadline propagation ----------------------------------------------------


def test_predicted_overrun_sheds_without_touching_a_worker(make_daemon):
    daemon = make_daemon(workers=1, brownout=False)
    # teach the cost model that this affinity key costs ~100ms
    spec = validate_job("teacher")
    assert daemon.submit(spec)["result"]["status"] == OK
    daemon._costs.record(affinity_key(spec.to_dict()), 0.1)
    jobs_before = [w.jobs_done for w in daemon._workers]
    response = daemon.submit(JobSpec(
        id="hopeless", kind="validate",
        params={"dtd_text": TINY_DTD, "document_text": "<doc><item/></doc>"},
        deadline_ms=1.0,
    ))
    assert response["shed"] == "predicted-overrun"
    assert response["result"]["status"] == SHED
    assert response["result"]["attempts"] == 0
    # no worker ran anything for it
    assert [w.jobs_done for w in daemon._workers] == jobs_before
    assert daemon.stats()["shed"] == {"predicted-overrun": 1}


def test_deadline_expires_in_queue_without_burning_a_worker(make_daemon):
    # the job:deadline-expired delay makes the queue wait outlive the
    # deadline after admission but before execution
    plan = FaultPlan(points={
        "job:deadline-expired": FaultSpec(action="delay", seconds=0.3),
    })
    daemon = make_daemon(workers=1, brownout=False, fault_plan=plan)
    response = daemon.submit(JobSpec(
        id="expired", kind="validate",
        params={"dtd_text": TINY_DTD, "document_text": "<doc><item/></doc>"},
        deadline_ms=50.0,
    ))
    result = response["result"]
    assert result["status"] == SHED
    assert result["detail"]["shed"] == "deadline-expired"
    assert result["attempts"] == 0
    # journaled exactly once, with the shed outcome
    assert completed_results(
        str(daemon.results_path))["expired"]["status"] == SHED


def test_generous_deadline_still_serves(make_daemon):
    daemon = make_daemon(workers=1, brownout=False)
    response = daemon.submit(JobSpec(
        id="roomy", kind="validate",
        params={"dtd_text": TINY_DTD, "document_text": "<doc><item/></doc>"},
        deadline_ms=30_000.0,
    ))
    assert response["result"]["status"] == OK


def test_supervisor_sheds_expired_deadline_without_forking():
    supervisor = Supervisor(retry=RetryPolicy(max_attempts=1))
    spec = JobSpec(
        id="instant", kind="validate",
        params={"dtd_text": TINY_DTD, "document_text": "<doc/>"},
        deadline_ms=0.001,  # a microsecond: expired before the attempt
    )
    time.sleep(0.01)
    result = supervisor.run_job(spec)
    assert result.status == SHED
    assert result.detail["shed"] == "deadline-expired"


def test_jobspec_deadline_round_trips_and_validates():
    spec = JobSpec(id="j", kind="validate", params={"dtd_text": "a :="},
                   deadline_ms=250.0)
    assert JobSpec.from_dict(spec.to_dict()).deadline_ms == 250.0
    # flat manifests must not absorb deadline_ms into params
    flat = {"id": "j", "kind": "validate", "dtd_text": "a :=",
            "deadline_ms": 125.0}
    parsed = JobSpec.from_dict(flat)
    assert parsed.deadline_ms == 125.0
    assert "deadline_ms" not in parsed.params
    with pytest.raises(Exception):
        JobSpec(id="j", kind="validate", deadline_ms=-1.0)


def test_clamp_timeout_keeps_cooperative_headroom():
    assert clamp_timeout(None, None) is None
    assert clamp_timeout(5.0, None) == 5.0
    assert clamp_timeout(None, 1.0) == pytest.approx(0.8)
    assert clamp_timeout(0.5, 1.0) == 0.5
    assert clamp_timeout(5.0, 1.0) == pytest.approx(0.8)
    assert clamp_timeout(5.0, -2.0) == 0.0


# -- brownout ----------------------------------------------------------------


def test_load_controller_escalates_fast_and_relaxes_slowly():
    clock = [0.0]
    controller = _LoadController(
        capacity=10, latency_budget=1.0, dwell=3, clock=lambda: clock[0]
    )
    assert controller.evaluate(0) == 0
    assert controller.evaluate(7) == 2       # 70% utilization: bounded-only
    assert controller.evaluate(10) == 3      # saturated: shed-new
    # stepping down needs `dwell` consecutive calm samples, one level
    # at a time — no flapping
    for _ in range(2):
        assert controller.evaluate(0) == 3
    assert controller.evaluate(0) == 2
    for _ in range(2):
        assert controller.evaluate(0) == 2
    assert controller.evaluate(0) == 1
    names = [t["to"] for t in controller.transitions]
    assert names == ["bounded-only", "shed-new", "bounded-only", "tightened"]
    assert all(t["to"] in PRESSURE_LEVELS for t in controller.transitions)


def test_load_controller_latency_signal_decays_with_the_window():
    clock = [0.0]
    controller = _LoadController(
        capacity=100, latency_budget=0.5, window=5.0, dwell=1,
        clock=lambda: clock[0],
    )
    controller.observe_wait(3.0)             # p95 >> 2x budget
    assert controller.evaluate(0) == 2
    clock[0] = 10.0                          # the sample ages out
    assert controller.p95_wait() == 0.0
    assert controller.evaluate(0) == 1       # one calm sample: step down
    assert controller.evaluate(0) == 0


def test_brownout_reaches_shed_new_and_health_recovers(make_daemon):
    plan = FaultPlan(points={
        "pool:backlog-storm": FaultSpec(action="delay", seconds=0.1),
    })
    daemon = make_daemon(
        workers=1, max_backlog=4, brownout=False, fault_plan=plan,
    )
    # drive the controller synchronously (no sampling thread) so the
    # pressure path is deterministic
    daemon._controller = _LoadController(
        capacity=4, latency_budget=0.05, interval=0.05, dwell=1,
    )
    assert daemon.health()["health"] == "ready"
    daemon._controller.evaluate(4)           # saturated: shed-new
    assert daemon.health()["health"] == "overloaded"
    response = daemon.submit(validate_job("browned-out"))
    assert response["shed"] == "overload"
    assert response["result"]["status"] == SHED
    daemon._controller.evaluate(0)           # calm: one step down
    assert daemon.health()["health"] == "degraded"
    daemon._controller.evaluate(0)
    daemon._controller.evaluate(0)
    assert daemon.health()["health"] == "ready"
    assert daemon.submit(validate_job("served-again"))[
        "result"]["status"] == OK


def test_health_verb_over_the_socket(make_daemon):
    daemon = make_daemon(workers=1)
    client = ServiceClient(daemon.socket_path)
    response = client.health()
    assert response["ok"]
    assert response["health"] == "ready"
    assert response["pressure"]["level"] == "ready"
    assert response["pressure"]["transitions"] == []


# -- the acceptance chaos test -----------------------------------------------


def test_overload_burst_10x_no_crash_exactly_once_and_recovery(make_daemon):
    """ISSUE 8 acceptance: 10x capacity burst against a 2-worker daemon."""
    plan = FaultPlan(points={
        "pool:backlog-storm": FaultSpec(action="delay", seconds=0.05),
    })
    daemon = make_daemon(
        workers=2, max_backlog=4, brownout=True, latency_budget=0.2,
        controller_interval=0.05, fault_plan=plan,
    )
    capacity = 2 * 4
    admitted, shed = submit_burst(daemon, 10 * capacity)
    assert len(admitted) + len(shed) == 10 * capacity
    assert shed, "a 10x burst must shed"
    assert admitted, "admission control must still admit up to capacity"
    # bounded memory: the queues never hold more than the caps allow
    assert all(q.qsize() <= 4 for q in daemon._queues)
    # the daemon survives and keeps answering while loaded
    client = ServiceClient(daemon.socket_path)
    assert client.ping()["ok"]
    assert client.health()["health"] in ("ready", "degraded", "overloaded")
    # every admitted job drains to a journaled result
    wait_until(lambda: set(admitted) <= set(
        completed_results(str(daemon.results_path))), timeout=60.0)
    raw = daemon.results_path.read_text().splitlines()
    by_id: dict[str, int] = {}
    for line in raw:
        record = json.loads(line)
        by_id[record["id"]] = by_id.get(record["id"], 0) + 1
    for job_id in admitted:
        assert by_id[job_id] == 1, f"{job_id} journaled {by_id[job_id]}x"
    done = completed_results(str(daemon.results_path))
    for job_id in admitted:
        assert done[job_id]["status"] != SHED
    for job_id in shed:
        assert done[job_id]["status"] == SHED
    # and health returns to ready once the burst has drained
    wait_until(lambda: client.health()["health"] == "ready", timeout=30.0)
    stats = daemon.stats()
    assert stats["shed"].get("backlog", 0) + stats["shed"].get(
        "overload", 0) == len(shed)
    # no worker crashed: both slots alive, zero respawns
    assert all(w["alive"] for w in stats["workers"])
    assert sum(w["respawns"] for w in stats["workers"]) == 0


# -- slow clients ------------------------------------------------------------


def test_slow_client_is_disconnected_by_the_socket_timeout(make_daemon):
    daemon = make_daemon(workers=1, client_timeout=0.3)
    slow = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    slow.connect(str(daemon.socket_path))
    slow.settimeout(5.0)
    started = time.monotonic()
    # send nothing: the daemon must cut us off, not wait forever
    assert slow.recv(1) == b""
    assert time.monotonic() - started < 3.0
    slow.close()
    # and the daemon still serves the next, well-behaved client
    client = ServiceClient(daemon.socket_path)
    assert client.ping()["ok"]


def test_client_slow_read_fault_point_delays_one_handler(make_daemon):
    plan = FaultPlan(points={
        "client:slow-read": FaultSpec(action="delay", seconds=0.2),
    })
    daemon = make_daemon(workers=1, fault_plan=plan)
    client = ServiceClient(daemon.socket_path)
    started = time.monotonic()
    assert client.ping()["ok"]
    assert time.monotonic() - started >= 0.2


# -- the cost model ----------------------------------------------------------


def test_cost_estimator_ewma_and_persistence(tmp_path):
    path = tmp_path / "costs.json"
    estimator = _CostEstimator(path)
    assert estimator.estimate("k") is None
    estimator.record("k", 1.0)
    assert estimator.estimate("k") == 1.0
    estimator.record("k", 2.0)
    assert estimator.estimate("k") == pytest.approx(1.3)
    estimator.save()
    reloaded = _CostEstimator(path)
    assert reloaded.estimate("k") == pytest.approx(1.3)
    # a torn/garbage file starts cold instead of crashing the daemon
    path.write_text("{not json")
    assert _CostEstimator(path).estimate("k") is None


def test_cost_estimator_table_stays_bounded(tmp_path):
    estimator = _CostEstimator(tmp_path / "costs.json")
    for index in range(_CostEstimator.MAX_KEYS + 10):
        estimator.record(f"key-{index}", 0.5)
    assert len(estimator) <= _CostEstimator.MAX_KEYS
    # the most recently used keys survive the prune
    assert estimator.estimate(f"key-{_CostEstimator.MAX_KEYS + 9}") == 0.5


def test_daemon_persists_costs_across_restart(make_daemon, tmp_path):
    directory = str(tmp_path / "cost-state")
    first = make_daemon(directory=directory, workers=1, brownout=False)
    assert first.submit(validate_job("warm"))["result"]["status"] == OK
    assert len(first._costs) == 1
    first.drain()
    second = make_daemon(directory=directory, workers=1, brownout=False)
    assert len(second._costs) == 1


# -- the circuit breaker half-open property (hypothesis) ---------------------


@given(
    events=st.lists(
        st.sampled_from(["fail", "ok", "allow", "tick"]),
        min_size=1, max_size=60,
    ),
    threshold=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=200, deadline=None)
def test_breaker_never_stays_open_past_cooldown_plus_success(
        events, threshold):
    """Whatever interleaving got the breaker open: once the cooldown has
    elapsed, allow() admits a half-open trial, and recording a success
    closes the circuit — the breaker is never permanently open."""
    clock = [0.0]
    breaker = _CircuitBreaker(threshold, cooldown=10.0,
                              clock=lambda: clock[0])
    for event in events:
        if event == "fail":
            breaker.record("key", "crashed")
        elif event == "ok":
            breaker.record("key", "ok")
        elif event == "allow":
            breaker.allow("key")
        else:
            clock[0] += 3.0
    # cooldown elapses, the half-open trial runs and succeeds...
    clock[0] += breaker.cooldown + 1.0
    assert breaker.allow("key"), "half-open must admit a trial"
    breaker.record("key", "ok")
    # ...and the circuit is closed for good until new failures accrue
    for _ in range(3):
        assert breaker.allow("key")


@given(fails=st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_breaker_reopens_on_half_open_failure(fails):
    clock = [0.0]
    breaker = _CircuitBreaker(2, cooldown=5.0, clock=lambda: clock[0])
    for _ in range(max(2, fails)):
        breaker.record("key", "timeout")
    assert not breaker.allow("key")
    clock[0] += 6.0
    assert breaker.allow("key")              # half-open trial
    breaker.record("key", "oom")             # trial fails...
    assert not breaker.allow("key")          # ...re-open immediately


# -- the CLI: retryable exit code and the health verb ------------------------


def test_cli_submit_exits_retryable_on_shed(make_daemon, tmp_path, capsys):
    from repro.cli import main

    daemon = make_daemon(workers=1, max_backlog=0, brownout=False)
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        json.dumps(validate_job("cli-shed").to_dict()) + "\n"
    )
    code = main(["submit", str(manifest),
                 "--socket", str(daemon.socket_path)])
    assert code == EXIT_SHED
    out = capsys.readouterr()
    assert '"status": "shed"' in out.out
    assert "shed=1" in out.err


def test_cli_submit_deadline_ms_flag_round_trips(make_daemon, tmp_path,
                                                 capsys):
    from repro.cli import main

    daemon = make_daemon(workers=1, brownout=False)
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        json.dumps(validate_job("cli-roomy").to_dict()) + "\n"
    )
    code = main(["submit", str(manifest), "--deadline-ms", "30000",
                 "--socket", str(daemon.socket_path)])
    assert code == 0
    assert '"status": "ok"' in capsys.readouterr().out


def test_cli_health_exit_codes(make_daemon, capsys):
    from repro.cli import main

    daemon = make_daemon(workers=1, brownout=False)
    daemon._controller = _LoadController(capacity=4, latency_budget=1.0)
    assert main(["submit", "--socket", str(daemon.socket_path),
                 "--health"]) == 0
    assert '"health": "ready"' in capsys.readouterr().out
    daemon._controller.evaluate(4)  # saturate: shed-new / overloaded
    assert main(["submit", "--socket", str(daemon.socket_path),
                 "--health"]) == EXIT_SHED
    assert '"health": "overloaded"' in capsys.readouterr().out


# -- metrics -----------------------------------------------------------------


def test_histogram_percentiles_are_windowed():
    histogram = Histogram()
    assert histogram.percentile(95) is None
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.percentile(50) == pytest.approx(50.0)
    assert histogram.percentile(95) == pytest.approx(95.0)
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 100.0
    snapshot = histogram.to_jsonable()
    assert snapshot["p50"] == pytest.approx(50.0)
    assert snapshot["p95"] == pytest.approx(95.0)
    # the window slides: old observations stop influencing percentiles
    for _ in range(Histogram.WINDOW):
        histogram.observe(1000.0)
    assert histogram.percentile(50) == 1000.0
    assert histogram.min == 1.0 and histogram.count == 100 + Histogram.WINDOW
