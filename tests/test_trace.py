"""The observability layer: span trees, metrics, stitching, statuses.

Four contracts from the tracing design are pinned here:

* **Structure** — nested ``span()`` blocks produce exactly the tree the
  nesting describes (hypothesis drives random shapes), siblings stay in
  completion order, and timing is consistent (a parent's window covers
  its children's).
* **Differential** — tracing is observation only: the same typecheck run
  with and without an ambient tracer returns identical verdicts and
  identical ``stats`` modulo the ``trace`` key.
* **Stitching** — a supervised batch run under a tracer grafts every
  worker subprocess's span tree under the right ``job:<id>`` span, across
  the result pipe and the fork boundary.
* **Exhaustion** — a governor blow-up mid-span closes the enclosing
  spans with ``status="exhausted"`` on its way out.

Plus the PR's result-log bugfix: batch result lines are schema-tagged
(``repro-job-result/v2``), carry ``job_id`` inside each cache-delta
block, and the resume reader stays tolerant of v1 lines.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceExhausted
from repro.pebble import copy_transducer
from repro.runtime import (
    GLOBAL_CACHE,
    METRICS_SCHEMA,
    NULL_TRACER,
    TRACE_SCHEMA,
    MetricsRegistry,
    Span,
    Tracer,
    clear_cache,
    completed_job_ids,
    current_tracer,
    governed,
    iter_jsonl_records,
    make_governor,
    memoized,
    summarize,
    trace_env_setting,
    tracing,
)
from repro.runtime.supervisor import (
    RESULT_SCHEMA,
    JobSpec,
    Supervisor,
)
from repro.trees import RankedAlphabet
from repro.typecheck import typecheck
from repro.xmlio import parse_dtd

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def _leaves_all_a():
    from repro.automata import BottomUpTA

    return BottomUpTA(
        alphabet=ALPHA,
        states={"ok"},
        leaf_rules={"a": {"ok"}},
        rules={(s, "ok", "ok"): {"ok"} for s in ("f", "g")},
        accepting={"ok"},
    )


# ---------------------------------------------------------------------------
# structure (hypothesis)
# ---------------------------------------------------------------------------

#: Random span-tree shapes: each node is (name, children).
_shapes = st.recursive(
    st.sampled_from("abcd").map(lambda name: (name, [])),
    lambda children: st.tuples(
        st.sampled_from("abcd"), st.lists(children, max_size=3)
    ),
    max_leaves=12,
)


def _record(tracer, shape):
    name, children = shape
    with tracer.span(name):
        for child in children:
            _record(tracer, child)


def _assert_mirrors(span, shape):
    name, children = shape
    assert span.name == name
    assert len(span.children) == len(children)
    for child_span, child_shape in zip(span.children, children):
        _assert_mirrors(child_span, child_shape)


def _count(shape):
    name, children = shape
    return 1 + sum(_count(child) for child in children)


@given(shape=_shapes)
@settings(max_examples=60, deadline=None)
def test_span_tree_mirrors_nesting(shape):
    tracer = Tracer()
    with tracing(tracer):
        _record(tracer, shape)
    assert tracer.root is not None
    _assert_mirrors(tracer.root, shape)
    assert tracer.n_spans == _count(shape)
    assert tracer.dropped == 0


@given(shape=_shapes)
@settings(max_examples=40, deadline=None)
def test_span_timing_and_ordering(shape):
    tracer = Tracer()
    with tracing(tracer):
        _record(tracer, shape)

    def check(span):
        end = span.start + span.wall
        previous_start = None
        for child in span.children:
            # a child runs inside its parent's window ...
            assert child.start >= span.start
            assert child.start + child.wall <= end + 1e-6
            # ... and siblings are recorded in execution order
            if previous_start is not None:
                assert child.start >= previous_start
            previous_start = child.start
            check(child)
        assert span.status == "ok"

    check(tracer.root)


@given(shape=_shapes)
@settings(max_examples=40, deadline=None)
def test_jsonl_records_reference_valid_parents(shape):
    tracer = Tracer()
    with tracing(tracer):
        _record(tracer, shape)
    records = list(iter_jsonl_records(tracer, "t"))
    assert len(records) == _count(shape)
    seen = set()
    for record in records:
        assert record["schema"] == TRACE_SCHEMA
        # pre-order: every parent id was emitted before its children
        assert record["parent_id"] is None or record["parent_id"] in seen
        seen.add(record["span_id"])
    assert records[0]["parent_id"] is None


@given(shape=_shapes)
@settings(max_examples=40, deadline=None)
def test_serialization_roundtrip(shape):
    tracer = Tracer()
    with tracing(tracer):
        _record(tracer, shape)
    rebuilt = Span.from_jsonable(tracer.root.to_jsonable())
    _assert_mirrors(rebuilt, shape)
    # wall times round during serialization; the shape-level summary
    # (span counts per phase) must survive exactly
    before, after = summarize(tracer.root), summarize(rebuilt)
    assert after["spans"] == before["spans"]
    assert set(after["phases"]) == set(before["phases"])
    for name, phase in after["phases"].items():
        assert phase["count"] == before["phases"][name]["count"]
        assert phase["wall"] == pytest.approx(
            before["phases"][name]["wall"], abs=1e-5
        )


def test_null_tracer_is_ambient_default():
    assert current_tracer() is NULL_TRACER
    assert not NULL_TRACER.active
    with NULL_TRACER.span("anything") as span:
        span.set(ignored=True)  # must be a harmless no-op
    tracer = Tracer()
    with tracing(tracer):
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER


def test_span_cap_drops_instead_of_growing():
    tracer = Tracer(max_spans=5)
    with tracing(tracer):
        with tracer.span("root"):
            for _ in range(20):
                with tracer.span("child"):
                    pass
    assert tracer.n_spans == 5
    assert tracer.dropped == 16
    assert len(tracer.root.children) == 4
    assert summarize(tracer.root, dropped=tracer.dropped)["dropped"] == 16


def test_trace_env_setting():
    assert trace_env_setting(None) == (False, None)
    assert trace_env_setting("0") == (False, None)
    assert trace_env_setting("off") == (False, None)
    assert trace_env_setting("") == (False, None)
    assert trace_env_setting("1") == (True, None)
    assert trace_env_setting("stderr") == (True, None)
    assert trace_env_setting("/tmp/x.jsonl") == (True, "/tmp/x.jsonl")


def test_metrics_registry():
    registry = MetricsRegistry()
    registry.counter("jobs").inc()
    registry.counter("jobs").inc(2)
    registry.gauge("depth").set(4.0)
    for value in (1.0, 3.0, 2.0):
        registry.histogram("wall").observe(value)
    with pytest.raises(TypeError):
        registry.gauge("jobs")
    snapshot = registry.snapshot()
    assert snapshot["schema"] == METRICS_SCHEMA
    assert snapshot["metrics"]["jobs"]["value"] == 3
    assert snapshot["metrics"]["depth"]["value"] == 4.0
    wall = snapshot["metrics"]["wall"]
    assert (wall["count"], wall["min"], wall["max"]) == (3, 1.0, 3.0)


# ---------------------------------------------------------------------------
# differential: tracing observes, never changes
# ---------------------------------------------------------------------------


def _strip_trace(stats):
    return {key: value for key, value in stats.items() if key != "trace"}


def test_typecheck_identical_with_and_without_tracing():
    machine = copy_transducer(ALPHA)
    tau = _leaves_all_a()

    clear_cache()
    plain = typecheck(machine, tau, tau, method="exact")

    clear_cache()
    tracer = Tracer()
    with tracing(tracer):
        traced = typecheck(machine, tau, tau, method="exact")

    assert traced.ok == plain.ok
    assert traced.method == plain.method
    assert "trace" not in plain.stats
    assert "trace" in traced.stats
    # stats must agree modulo the trace key (seconds jitter excepted)
    plain_stats = _strip_trace(plain.stats)
    traced_stats = _strip_trace(traced.stats)
    plain_stats.pop("seconds"), traced_stats.pop("seconds")
    # cache bytes/entries are table-global, not per-run: compare deltas
    for stats in (plain_stats, traced_stats):
        stats["cache"] = {
            key: value for key, value in stats["cache"].items()
            if key in ("enabled", "hits", "misses", "stores", "evictions")
        }
    assert traced_stats == plain_stats

    summary = traced.stats["trace"]
    assert summary["spans"] > 0
    assert "typecheck" in summary["phases"]
    assert "exact" in summary["phases"]


def test_trace_records_cache_hit_miss_deltas():
    clear_cache()
    previous = GLOBAL_CACHE.enabled
    GLOBAL_CACHE.enabled = True
    try:
        tracer = Tracer()
        with tracing(tracer):
            with tracer.span("outer"):
                memoized("demo.op", (), lambda: 1, extra=("k",))
                memoized("demo.op", (), lambda: 1, extra=("k",))
    finally:
        GLOBAL_CACHE.enabled = previous
        clear_cache()
    outer = tracer.root
    first, second = (
        child for child in outer.children if child.name == "demo.op"
    )
    assert first.attrs["cache"] == "miss"
    assert second.attrs["cache"] == "hit"
    assert first.cache["misses"] == 1 and first.cache["stores"] == 1
    assert second.cache["hits"] == 1 and second.cache["misses"] == 0
    assert outer.cache["hits"] == 1 and outer.cache["misses"] == 1


# ---------------------------------------------------------------------------
# exhaustion mid-span
# ---------------------------------------------------------------------------


def test_spans_close_exhausted_when_governor_fires():
    governor = make_governor(max_steps=1)
    tracer = Tracer()
    with tracing(tracer), governed(governor):
        with pytest.raises(ResourceExhausted):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    governor.tick()
                    governor.tick()  # budget is 1: this raises
    outer = tracer.root
    assert outer.name == "outer"
    assert outer.status == "exhausted"
    assert outer.children[0].status == "exhausted"
    assert outer.children[0].attrs["exhausted_reason"] == "steps"
    # and the governor steps consumed inside the span were recorded
    assert outer.steps >= 1


def test_exhausted_typecheck_closes_spans_exhausted():
    machine = copy_transducer(ALPHA)
    tau = _leaves_all_a()
    clear_cache()
    tracer = Tracer()
    with tracing(tracer):
        with pytest.raises(ResourceExhausted):
            typecheck(machine, tau, tau, method="exact", max_steps=5)
    assert tracer.root is not None
    assert tracer.root.name == "typecheck"
    assert tracer.root.status == "exhausted"
    statuses = {span.status for span in _walk(tracer.root)}
    assert "exhausted" in statuses


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


def test_error_status_on_other_exceptions():
    tracer = Tracer()
    with tracing(tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
    assert tracer.root.status == "error"
    assert tracer.root.attrs["error_type"] == "ValueError"


# ---------------------------------------------------------------------------
# fork-stitching across a supervised batch
# ---------------------------------------------------------------------------

_INPUT_DTD = "root := a*\na := #PCDATA\n"


def _typecheck_spec(job_id):
    return JobSpec(
        id=job_id,
        kind="typecheck",
        params={
            "stylesheet_text": (
                '<xsl:template match="root"><out>'
                "<xsl:apply-templates/></out></xsl:template>"
                '<xsl:template match="a"><item/></xsl:template>'
            ),
            "input_dtd_text": _INPUT_DTD,
            "output_dtd_text": "out := item*\nitem := #PCDATA\n",
        },
    )


@pytest.mark.parametrize("workers", [1, 2])
def test_batch_stitches_worker_traces(tmp_path, workers):
    specs = [_typecheck_spec(f"job-{i}") for i in range(3)]
    tracer = Tracer()
    supervisor = Supervisor()
    with tracing(tracer):
        report = supervisor.run_batch(
            specs,
            workers=workers,
            results_path=str(tmp_path / "results.jsonl"),
        )
    assert report.by_status == {"ok": 3}

    root = tracer.root
    assert root.name == "batch"
    job_spans = {span.name: span for span in root.children}
    assert set(job_spans) == {f"job:job-{i}" for i in range(3)}
    for name, job_span in job_spans.items():
        names = [span.name for span in _walk(job_span)]
        # the worker subprocess's subtree was grafted under the attempt:
        # worker → typecheck → exact came over the result pipe
        assert "attempt" in names
        assert "worker" in names
        assert "typecheck" in names
        worker = next(s for s in _walk(job_span) if s.name == "worker")
        assert worker.attrs["job"] == name.removeprefix("job:")
    # grafted spans feed the metrics registry too
    snapshot = tracer.metrics.snapshot()
    assert snapshot["metrics"]["span.worker.wall"]["count"] == 3
    assert snapshot["metrics"]["job.status.ok"]["value"] == 3


def test_untraced_batch_ships_no_trace_payload(tmp_path):
    results = tmp_path / "results.jsonl"
    report = Supervisor().run_batch(
        [_typecheck_spec("solo")], results_path=str(results)
    )
    assert report.by_status == {"ok": 1}
    (line,) = results.read_text().splitlines()
    assert "\"trace\"" not in line


# ---------------------------------------------------------------------------
# result-log schema bump + job_id labeling (the PR's bugfix)
# ---------------------------------------------------------------------------


def test_result_lines_are_schema_tagged_with_job_id(tmp_path):
    results = tmp_path / "results.jsonl"
    report = Supervisor().run_batch(
        [_typecheck_spec("labelled")], results_path=str(results)
    )
    assert report.by_status == {"ok": 1}
    (line,) = results.read_text().splitlines()
    data = json.loads(line)
    assert data["schema"] == RESULT_SCHEMA
    cache = data["detail"]["stats"]["cache"]
    assert cache["job_id"] == "labelled"
    for attempt in data["history"]:
        attempt_cache = attempt.get("detail", {}).get("stats", {}).get(
            "cache"
        )
        if attempt_cache is not None:
            assert attempt_cache["job_id"] == "labelled"


def test_resume_reader_tolerates_v1_and_v2_lines(tmp_path):
    log = tmp_path / "results.jsonl"
    log.write_text(
        json.dumps({"id": "old-job", "status": "ok"}) + "\n"  # v1: no schema
        + json.dumps({"schema": RESULT_SCHEMA, "id": "new-job",
                      "status": "ok"}) + "\n"
        + "{truncated"  # torn final line from a SIGKILL mid-write
    )
    assert completed_job_ids(str(log)) == {"old-job", "new-job"}
