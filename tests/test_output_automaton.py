"""Proposition 3.8: the per-input output automaton A_t."""

import random

from hypothesis import given, settings

from conftest import btrees
from repro.automata import td_to_bu
from repro.data.generators import full_binary_tree
from repro.pebble import (
    Emit0,
    Emit2,
    Move,
    PebbleTransducer,
    RuleSet,
    copy_transducer,
    enumerate_outputs,
    evaluate,
    exponential_transducer,
    has_output,
    output_automaton,
    output_contains,
    output_language,
    some_output,
)
from repro.trees import RankedAlphabet, leaf, node

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def nondet_leaf_flipper() -> PebbleTransducer:
    """Copies the tree but may flip any leaf's label: 2^leaves outputs."""
    rules = RuleSet()
    for symbol in sorted(ALPHA.internals):
        rules.add(symbol, "q", Emit2(symbol, "q1", "q2"))
        rules.add(symbol, "q1", Move("down-left", "q"))
        rules.add(symbol, "q2", Move("down-right", "q"))
    for symbol in sorted(ALPHA.leaves):
        rules.add(symbol, "q", Emit0("a"))
        rules.add(symbol, "q", Emit0("b"))
    return PebbleTransducer(ALPHA, ALPHA, [["q", "q1", "q2"]], "q", rules)


class TestDeterministicCase:
    @given(btrees())
    @settings(max_examples=30)
    def test_language_is_singleton_output(self, tree):
        machine = copy_transducer(ALPHA)
        automaton = output_automaton(machine, tree)
        assert automaton.accepts(tree)
        assert some_output(machine, tree) == tree
        # a different tree is not in T(t)
        other = node("f", tree, tree)
        assert not output_contains(machine, tree, other)

    def test_exponential_output_membership_cheap(self):
        """The PTIME claim: A_t answers membership without materializing
        the exponential output."""
        machine = exponential_transducer(ALPHA)
        tree = full_binary_tree(ALPHA, 6, "f", "a")
        automaton = output_automaton(machine, tree)
        # statement (2) of Prop 3.8: states are configurations, O(n^k)
        assert len(automaton.states) <= 4 * tree.size()
        produced = evaluate(machine, tree)
        assert automaton.accepts(produced)
        assert not automaton.accepts(tree)

    def test_diverging_machine_has_empty_output(self):
        rules = RuleSet().add(None, "q", Move("stay", "p"))
        rules.add(None, "p", Move("stay", "q"))
        machine = PebbleTransducer(ALPHA, ALPHA, [["q", "p"]], "q", rules)
        assert not has_output(machine, leaf("a"))
        assert some_output(machine, leaf("a")) is None


class TestNondeterministicCase:
    def test_output_count(self):
        machine = nondet_leaf_flipper()
        tree = node("f", leaf("a"), node("g", leaf("b"), leaf("a")))
        outputs = list(enumerate_outputs(machine, tree, 20))
        assert len(outputs) == 8  # 2^3 leaf flips
        assert len(set(outputs)) == 8
        for output in outputs:
            assert output_contains(machine, tree, output)

    def test_shape_constraints(self):
        machine = nondet_leaf_flipper()
        tree = node("f", leaf("a"), leaf("b"))
        # all outputs share the input's shape
        assert output_contains(machine, tree, node("f", leaf("b"), leaf("b")))
        assert not output_contains(machine, tree, node("g", leaf("a"),
                                                       leaf("a")))
        assert not output_contains(machine, tree, leaf("a"))

    def test_language_is_regular_object(self):
        machine = nondet_leaf_flipper()
        tree = node("f", leaf("a"), leaf("b"))
        language = output_language(machine, tree)
        # boolean algebra applies to T(t) as to any regular language
        complement = language.complemented()
        assert not complement.accepts(node("f", leaf("b"), leaf("a")))
        assert complement.accepts(leaf("a"))


class TestAgainstDirectEvaluation:
    @given(btrees(max_leaves=5))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_machines_agree(self, tree):
        """For deterministic T: L(A_t) = {evaluate(T, t)} (or empty)."""
        for machine in (copy_transducer(ALPHA), exponential_transducer(ALPHA)):
            produced = evaluate(machine, tree)
            language = output_language(machine, tree)
            witness = language.witness()
            if produced is None:
                assert witness is None
            else:
                assert witness == produced
