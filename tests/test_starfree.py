"""Theorem 4.8: the star-free lower-bound machinery."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PebbleMachineError, RegexError
from repro.pebble import (
    decide_membership,
    encode_string,
    pebble_automaton_to_ta,
    pebbles_needed,
    singleton_b_type,
    starfree_to_automaton,
    starfree_to_transducer,
    string_alphabet,
    string_encodings_type,
    evaluate,
)
from repro.regex import compile_regex, parse_regex
from repro.typecheck import typecheck

ALPHA = string_alphabet({"a", "b"})

EXPRESSIONS = [
    "a",
    "b",
    "a.b",
    "a|b",
    "~a",
    "~(a.b)",
    "a & ~b",
    "(a|b).(a|b)",
    "~(~a . ~b)",
    "a.b.a",
    "~(a.(a|b))",
    "~(a.b) & (a.b | b.a)",
    "%",
    "@",
]


class TestEncoding:
    def test_right_linear_shape(self):
        tree = encode_string(["a", "b"], ALPHA)
        assert str(tree) == "a(#,b(#,#))"

    def test_roundtrip(self):
        from repro.pebble.starfree import decode_string

        for word in (["a"], ["a", "b", "a"], ["b", "b"]):
            assert decode_string(encode_string(word, ALPHA)) == word

    def test_empty_rejected(self):
        with pytest.raises(PebbleMachineError):
            encode_string([], ALPHA)

    def test_type_of_encodings(self, rng):
        tau = string_encodings_type(ALPHA)
        assert tau.accepts(encode_string(["a", "b", "a"], ALPHA))
        from repro.trees import leaf, node

        assert not tau.accepts(leaf("#"))
        assert not tau.accepts(
            node("a", node("b", leaf("#"), leaf("#")), leaf("#"))
        )


class TestDecider:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_membership_matches_dfa(self, text):
        expr = parse_regex(text)
        dfa = compile_regex(expr, {"a", "b"})
        for n in range(1, 5):
            for word in itertools.product("ab", repeat=n):
                assert decide_membership(expr, word, ALPHA) == \
                    dfa.accepts(word), (text, word)

    def test_pebble_count_tracks_concat_depth(self):
        assert pebbles_needed(parse_regex("a")) == 2
        assert pebbles_needed(parse_regex("a.b")) == 3
        assert pebbles_needed(parse_regex("(a.b).(a.b)")) == 4
        assert pebbles_needed(parse_regex("~(a.~(b.a))")) == 4

    def test_decider_is_deterministic(self):
        machine = starfree_to_transducer(parse_regex("~(a.b)"), ALPHA)
        # syntactically there may be paired up-left/up-right rules, but the
        # runtime must never face a real choice: evaluate() enforces this,
        # and every word must produce an output.
        for word in (["a"], ["a", "b"], ["b", "a", "b"]):
            assert evaluate(machine, encode_string(word, ALPHA)) is not None

    def test_star_rejected(self):
        with pytest.raises(RegexError):
            starfree_to_transducer(parse_regex("a*"), ALPHA)


class TestReduction:
    """r is empty iff T_r typechecks against {b} (Theorem 4.8)."""

    @pytest.mark.parametrize(
        "text,is_empty",
        [
            ("a & b", True),
            ("a", False),
            ("~(a.a) & a.a", True),
            ("~% & ~(a|b) & ~((a|b).(a|b))", False),  # length >= 3 words
        ],
    )
    def test_bounded_reduction(self, text, is_empty):
        expr = parse_regex(text)
        machine = starfree_to_transducer(expr, ALPHA)
        result = typecheck(
            machine,
            string_encodings_type(ALPHA),
            singleton_b_type(),
            method="bounded",
            max_inputs=30,
        )
        assert result.ok == is_empty

    def test_automaton_accepts_exactly_the_language(self):
        """inst(A_r) = {enc(w) | w ∈ lang(r)}, checked via AGAP.

        (Regularizing A_r through Theorem 4.7 is possible but already
        hits the non-elementary wall at k = 2 — that cost is *measured*
        in benchmarks/bench_e11_lower_bound.py rather than asserted here.)
        """
        expr = parse_regex("~(a.b)")
        automaton = starfree_to_automaton(expr, ALPHA)
        dfa = compile_regex(expr, {"a", "b"})
        for n in range(1, 4):
            for word in itertools.product("ab", repeat=n):
                tree = encode_string(word, ALPHA)
                assert automaton.accepts(tree) == dfa.accepts(word)
        # outside the fixed input type tau1 the decider only reads the
        # right spine (the paper constrains inputs via tau1, not A_r):
        from repro.trees import leaf, node

        malformed = node("a", node("b", leaf("#"), leaf("#")), leaf("#"))
        assert not string_encodings_type(ALPHA).accepts(malformed)
        assert automaton.accepts(malformed) == dfa.accepts(["a"])

    def test_no_branching(self):
        automaton = starfree_to_automaton(parse_regex("~(a.b)"), ALPHA)
        assert not automaton.has_branching()  # Corollary 4.9's class
