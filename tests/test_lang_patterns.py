"""Tree patterns and matching (Section 2.2, Example 3.5)."""

from repro.lang import Pattern, match, match_count, pattern
from repro.trees import parse_utree


class TestPatternMatching:
    def test_single_node_pattern(self):
        tree = parse_utree("a(b, b, c(d), e)")
        assert match_count(pattern("a.b"), tree) == 2
        assert match_count(pattern("a.c.d"), tree) == 1
        assert match_count(pattern("a.z"), tree) == 0

    def test_paper_shape_pattern(self):
        """p = [r1]([r2], [r3]([r4],[r5])) — the Section 2.2 shape."""
        tree = parse_utree("a(b(c, d(e)), b(c, d(f)))")
        shape = pattern(
            "a.b",
            pattern("b.c"),
            pattern("b.d", pattern("d.(e|f)")),
        )
        bindings = list(match(shape, tree))
        # two b nodes, each with one c and one d(e|f) descendant
        assert len(bindings) == 2
        for binding in bindings:
            assert len(binding) == 4
            x1 = binding[0]
            assert tree.subtree(x1).label == "b"

    def test_bindings_are_relative_to_parent(self):
        tree = parse_utree("a(b(c), c)")
        found = list(match(pattern("a.b", pattern("b.c")), tree))
        # the inner c must be below the matched b, not the top-level c
        assert found == [((0,), (0, 0))]

    def test_multiple_matches_per_child(self):
        tree = parse_utree("a(b(c, c))")
        assert match_count(pattern("a.b", pattern("b.c")), tree) == 2

    def test_star_pattern(self):
        tree = parse_utree("a(a(a(b)))")
        # every a on the spine matches a+, and b below each matches
        assert match_count(pattern("a+.b"), tree) == 1
        assert match_count(pattern("a+"), tree) == 3

    def test_n_nodes(self):
        shape = pattern("a", pattern("b"), pattern("c", pattern("d")))
        assert shape.n_nodes() == 4

    def test_epsilon_matches_self(self):
        tree = parse_utree("a(b)")
        assert match_count(pattern("%"), tree) == 1
