"""Smoke tests: every example script must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # examples guard their body with __main__, so run them as main
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip()  # every example narrates its result
