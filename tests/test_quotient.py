"""Bisimulation quotients of pebble automata."""

import random

from repro.automata import bu_to_td
from repro.data import q1_output_even_dtd
from repro.lang import q1_transducer
from repro.pebble import (
    Branch0,
    Branch2,
    Move,
    PebbleAutomaton,
    RuleSet,
    quotient_pebble_automaton,
    transducer_times_automaton,
    trim_pebble_automaton,
)
from repro.trees import RankedAlphabet, random_btree
from repro.typecheck import as_automaton

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


class TestQuotient:
    def test_duplicate_states_merge(self):
        """Two verbatim copies of the same walker collapse to one."""
        rules = RuleSet()
        for name in ("q", "p"):
            rules.add(None, name, Move("down-left", name))
            rules.add("b", name, Branch0())
        rules.add(None, "start", Branch2("q", "p"))
        automaton = PebbleAutomaton(ALPHA, [["start", "q", "p"]], "start",
                                    rules)
        quotient = quotient_pebble_automaton(automaton)
        assert len(quotient.level_of) == 2  # start + merged walker

    def test_language_preserved_on_q1_product(self, rng):
        machine = q1_transducer()
        tau2 = as_automaton(q1_output_even_dtd(), machine.output_alphabet)
        product = transducer_times_automaton(
            machine, bu_to_td(tau2.complemented().trimmed())
        )
        trimmed = trim_pebble_automaton(product)
        quotient = quotient_pebble_automaton(trimmed)
        assert len(quotient.level_of) < len(trimmed.level_of)
        for _ in range(20):
            tree = random_btree(product.alphabet, rng.randint(1, 8), rng)
            assert product.accepts(tree) == quotient.accepts(tree)

    def test_initial_state_survives(self):
        rules = RuleSet()
        rules.add("a", "q", Branch0())
        automaton = PebbleAutomaton(ALPHA, [["q"]], "q", rules)
        quotient = quotient_pebble_automaton(automaton)
        assert quotient.initial in quotient.level_of

    def test_distinguishable_states_not_merged(self):
        rules = RuleSet()
        rules.add("a", "q", Branch0())
        rules.add("b", "p", Branch0())
        rules.add(None, "start", Branch2("q", "p"))
        automaton = PebbleAutomaton(ALPHA, [["start", "q", "p"]], "start",
                                    rules)
        quotient = quotient_pebble_automaton(automaton)
        assert len(quotient.level_of) == 3

    def test_idempotent(self):
        machine = q1_transducer()
        tau2 = as_automaton(q1_output_even_dtd(), machine.output_alphabet)
        product = transducer_times_automaton(
            machine, bu_to_td(tau2.complemented().trimmed())
        )
        once = quotient_pebble_automaton(trim_pebble_automaton(product))
        twice = quotient_pebble_automaton(once)
        assert len(twice.level_of) == len(once.level_of)
