"""Supervised execution: isolation, hard limits, classification, retry.

Covers the :mod:`repro.runtime.supervisor` contract attempt by attempt:
every outcome lands in exactly one taxonomy bucket, hard limits SIGKILL
(they do not cooperate), retries follow the declarative policy, and
degradation rewrites resource-killed jobs into bounded, budgeted ones.
Fault injection (:mod:`repro.runtime.faults`) provides the failures.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    EXIT_CRASHED,
    EXIT_EXHAUSTED,
    EXIT_OK,
    EXIT_TYPE_ERROR,
    EXIT_USAGE,
    SupervisorError,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.supervisor import (
    CRASHED,
    EXHAUSTED,
    OK,
    OOM,
    TIMEOUT,
    TYPE_ERROR,
    USAGE_ERROR,
    BatchReport,
    JobLimits,
    JobResult,
    JobSpec,
    RetryPolicy,
    Supervisor,
    _degraded,
    completed_job_ids,
    completed_results,
    load_manifest,
)

TINY_DTD = "doc := item*\nitem :="
VALID_PARAMS = {"dtd_text": TINY_DTD, "document_text": "<doc><item/></doc>"}
INVALID_PARAMS = {"dtd_text": TINY_DTD, "document_text": "<doc><bad/></doc>"}

IDENTITY_SHEET = (
    '<xsl:template match="doc"><doc><xsl:apply-templates/></doc>'
    "</xsl:template>"
    '<xsl:template match="item"><item/></xsl:template>'
)


def validate_spec(job_id: str, params=None) -> JobSpec:
    return JobSpec(id=job_id, kind="validate",
                   params=dict(params or VALID_PARAMS))


# -- classification ----------------------------------------------------------


def test_ok_job_classified_ok():
    result = Supervisor().run_job(validate_spec("v-ok"))
    assert result.status == OK
    assert result.ok
    assert result.attempts == 1
    assert result.history[0]["kind"] == "validate"


def test_validation_failure_is_type_error_not_crash():
    result = Supervisor().run_job(validate_spec("v-bad", INVALID_PARAMS))
    assert result.status == TYPE_ERROR
    assert result.detail["errors"][0]["message"].startswith(
        "undeclared element"
    )


def test_malformed_input_is_usage_error():
    spec = JobSpec(
        id="v-usage",
        kind="validate",
        params={"dtd_text": ":= nonsense", "document_text": "<a/>"},
    )
    result = Supervisor().run_job(spec)
    assert result.status == USAGE_ERROR
    assert result.detail["error_type"] == "DTDError"


def test_typecheck_job_roundtrips_verdict_and_stats():
    spec = JobSpec(
        id="tc-ok",
        kind="typecheck",
        params={
            "stylesheet_text": IDENTITY_SHEET,
            "input_dtd_text": TINY_DTD,
            "output_dtd_text": TINY_DTD,
            "method": "exact",
        },
    )
    result = Supervisor().run_job(spec)
    assert result.status == OK
    assert result.detail["method"] == "exact"
    assert "cache" in result.detail["stats"]
    # the wire format is JSON all the way down
    json.dumps(result.to_jsonable())


def test_typecheck_counterexample_survives_the_wire():
    spec = JobSpec(
        id="tc-bad",
        kind="typecheck",
        params={
            "stylesheet_text": (
                '<xsl:template match="doc"><doc><doc/></doc>'
                "</xsl:template>"
                '<xsl:template match="item"><item/></xsl:template>'
            ),
            "input_dtd_text": TINY_DTD,
            "output_dtd_text": TINY_DTD,
            "method": "exact",
        },
    )
    result = Supervisor().run_job(spec)
    assert result.status == TYPE_ERROR
    assert result.detail["counterexample_input"].startswith("<doc")
    assert "<doc>" in result.detail["counterexample_output"]


def test_cooperative_budget_reports_exhausted_with_diagnostics():
    spec = JobSpec(
        id="tc-exhaust",
        kind="typecheck",
        params={
            "stylesheet_text": IDENTITY_SHEET,
            "input_dtd_text": TINY_DTD,
            "output_dtd_text": TINY_DTD,
            "method": "exact",
            "max_steps": 3,
            "fallback": False,
        },
    )
    result = Supervisor().run_job(spec)
    assert result.status == EXHAUSTED
    assert result.detail["exhausted"]["reason"] == "steps"


def test_unexpected_worker_exception_is_crashed():
    plan = FaultPlan(points={"worker:compute": FaultSpec(action="exception")})
    result = Supervisor(fault_plan=plan).run_job(validate_spec("v-exc"))
    assert result.status == CRASHED
    assert result.detail["error_type"] == "FaultInjected"


def test_sigkilled_worker_is_crashed_with_signal_forensics():
    plan = FaultPlan(points={"worker:result": FaultSpec(action="crash")})
    result = Supervisor(fault_plan=plan).run_job(validate_spec("v-crash"))
    assert result.status == CRASHED
    assert result.history[0]["exitcode"] == -9
    assert "signal 9" in result.detail["error"]


# -- hard limits -------------------------------------------------------------


def test_wall_limit_sigkills_and_classifies_timeout():
    plan = FaultPlan(
        points={"worker:compute": FaultSpec(action="delay", seconds=30.0)}
    )
    supervisor = Supervisor(
        fault_plan=plan, limits=JobLimits(wall_seconds=0.4)
    )
    result = supervisor.run_job(validate_spec("v-slow"))
    assert result.status == TIMEOUT
    assert result.history[0]["killed_by"] == "wall-limit"
    # killed promptly, not after the 30s the worker wanted
    assert result.wall_seconds < 5.0


def test_rss_limit_sigkills_and_classifies_oom():
    plan = FaultPlan(
        points={
            "worker:compute": FaultSpec(
                action="oom", rss_bytes=512 * 1024 * 1024, seconds=30.0
            )
        }
    )
    supervisor = Supervisor(
        fault_plan=plan,
        limits=JobLimits(rss_bytes=96 * 1024 * 1024, wall_seconds=30.0),
    )
    result = supervisor.run_job(validate_spec("v-fat"))
    assert result.status == OOM
    assert result.history[0]["killed_by"] == "rss-limit"
    # killed on the way up, long before 512 MiB
    assert result.wall_seconds < 10.0


# -- retry policy ------------------------------------------------------------


def test_crash_is_retried_until_success():
    # seed 1: job "a" crashes once then succeeds (verified deterministic)
    plan = FaultPlan(
        seed=1,
        points={"worker:result": FaultSpec(action="crash", rate=0.5)},
    )
    supervisor = Supervisor(
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=5, base_delay=0.01),
    )
    result = supervisor.run_job(validate_spec("a"))
    assert result.status == OK
    assert result.attempts == 2
    assert [entry["status"] for entry in result.history] == [CRASHED, OK]


def test_retry_stops_at_max_attempts():
    plan = FaultPlan(points={"worker:result": FaultSpec(action="crash")})
    supervisor = Supervisor(
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01),
    )
    result = supervisor.run_job(validate_spec("always-dies"))
    assert result.status == CRASHED
    assert result.attempts == 3


def test_type_error_is_final_never_retried():
    supervisor = Supervisor(
        retry=RetryPolicy(max_attempts=4, base_delay=0.01)
    )
    result = supervisor.run_job(validate_spec("v-bad2", INVALID_PARAMS))
    assert result.status == TYPE_ERROR
    assert result.attempts == 1


def test_backoff_is_exponential_with_deterministic_jitter():
    policy = RetryPolicy(
        max_attempts=4, base_delay=0.5, factor=2.0, jitter=0.1, seed=7
    )
    first = policy.delay(1, "job-x")
    second = policy.delay(2, "job-x")
    third = policy.delay(3, "job-x")
    assert 0.5 <= first <= 0.55
    assert 1.0 <= second <= 1.1
    assert 2.0 <= third <= 2.2
    # deterministic: the same (seed, job, attempt) — the same pause
    assert policy.delay(2, "job-x") == second
    # but distinct jobs draw distinct jitter
    assert policy.delay(2, "job-x") != policy.delay(2, "job-y")


def test_policy_validation():
    with pytest.raises(SupervisorError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(SupervisorError):
        RetryPolicy(budget_scale=0.0)
    with pytest.raises(SupervisorError):
        RetryPolicy(retry_on=("nonsense",))
    with pytest.raises(SupervisorError):
        JobLimits(wall_seconds=-1)


# -- degradation -------------------------------------------------------------


def test_degradation_rewrites_exact_to_bounded_with_budgets():
    spec = JobSpec(
        id="d1",
        kind="typecheck",
        params={"stylesheet_text": "s", "input_dtd_text": "i",
                "output_dtd_text": "o", "method": "exact",
                "max_inputs": 40},
    )
    policy = RetryPolicy(max_attempts=3, budget_scale=0.5)
    limits = JobLimits(wall_seconds=10.0)
    degraded = _degraded(spec, limits, policy, resource_failures=1)
    assert degraded.params["method"] == "bounded"
    assert degraded.params["max_inputs"] == 20
    # cooperative timeout installed with headroom under the hard wall
    assert degraded.params["timeout"] == pytest.approx(4.0)
    # a second resource failure tightens further
    again = _degraded(degraded, limits, policy, resource_failures=2)
    assert again.params["max_inputs"] == 10
    assert again.params["timeout"] == pytest.approx(2.0)


def test_degradation_scales_explicit_budgets():
    spec = JobSpec(
        id="d2", kind="run",
        params={"stylesheet_text": "s", "document_text": "d",
                "timeout": 8.0, "max_steps": 1000},
    )
    degraded = _degraded(
        spec, JobLimits(), RetryPolicy(budget_scale=0.5), 1
    )
    assert degraded.params["timeout"] == pytest.approx(4.0)
    assert degraded.params["max_steps"] == 500


def test_degraded_retry_of_resource_killed_typecheck(pathological_typecheck):
    """A wall-killed exact job retries as bounded and reaches a verdict."""
    supervisor = Supervisor(
        limits=JobLimits(wall_seconds=3.0),
        retry=RetryPolicy(
            max_attempts=2, base_delay=0.01, retry_on=(CRASHED, TIMEOUT, OOM)
        ),
    )
    result = supervisor.run_job(pathological_typecheck("patho-degrade"))
    assert [entry["status"] for entry in result.history][0] == TIMEOUT
    assert result.attempts == 2
    # the retry ran degraded: bounded method, cooperative budget — it
    # either finished (ok) or exhausted cooperatively with diagnostics,
    # but it was not silently SIGKILLed a second time.
    assert result.status in (OK, EXHAUSTED)
    if result.status == OK:
        assert result.detail["method"] == "bounded"


# -- spec/manifest plumbing --------------------------------------------------


def test_job_spec_validation():
    with pytest.raises(SupervisorError):
        JobSpec(id="", kind="validate")
    with pytest.raises(SupervisorError):
        JobSpec(id="x", kind="transmogrify")


def test_manifest_roundtrip_and_errors(tmp_path):
    manifest = tmp_path / "jobs.jsonl"
    manifest.write_text(
        "# comment\n"
        + json.dumps({"id": "j1", "kind": "validate",
                      "params": VALID_PARAMS}) + "\n"
        + json.dumps({"id": "j2", "kind": "validate",
                      "dtd_text": TINY_DTD,
                      "document_text": "<doc/>"}) + "\n"
    )
    specs = load_manifest(str(manifest))
    assert [spec.id for spec in specs] == ["j1", "j2"]
    # flat manifests fold unknown keys into params
    assert specs[1].params["dtd_text"] == TINY_DTD

    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(SupervisorError, match="line is not valid JSON"):
        load_manifest(str(bad))
    bad.write_text(json.dumps({"id": "j", "kind": "nope"}) + "\n")
    with pytest.raises(SupervisorError, match="unknown kind"):
        load_manifest(str(bad))


def test_duplicate_job_ids_rejected():
    specs = [validate_spec("dup"), validate_spec("dup")]
    with pytest.raises(SupervisorError, match="duplicate job id"):
        Supervisor().run_batch(specs)


def test_checkpoint_reader_tolerates_truncated_tail(tmp_path):
    log = tmp_path / "results.jsonl"
    log.write_text(
        json.dumps({"id": "done-1", "status": "ok"}) + "\n"
        + json.dumps({"id": "done-2", "status": "ok"}) + "\n"
        + '{"id": "half-wr'  # a SIGKILL mid-write leaves this behind
    )
    assert completed_job_ids(str(log)) == {"done-1", "done-2"}
    assert completed_job_ids(str(tmp_path / "missing.jsonl")) == set()


def test_completed_results_deduplicates_repeated_ids_last_wins(tmp_path):
    # a resumed-then-crashed-then-resumed batch legitimately writes the
    # same job id more than once; the *last* record is the truth
    log = tmp_path / "results.jsonl"
    log.write_text(
        json.dumps({"id": "flip", "status": "crashed"}) + "\n"
        + json.dumps({"id": "steady", "status": "ok"}) + "\n"
        + json.dumps({"id": "flip", "status": "ok", "attempts": 2}) + "\n"
    )
    done = completed_results(str(log))
    assert set(done) == {"flip", "steady"}
    assert done["flip"]["status"] == "ok"
    assert done["flip"]["attempts"] == 2
    assert completed_job_ids(str(log)) == {"flip", "steady"}


def test_resume_counts_duplicated_checkpoint_lines_once(tmp_path):
    # the resume rollup must not double-count a job that appears twice
    # in the checkpoint: 3 specs, 4 checkpoint lines, 1 job left to run
    log = tmp_path / "results.jsonl"
    log.write_text(
        json.dumps({"id": "done-1", "status": "crashed"}) + "\n"
        + json.dumps({"id": "done-2", "status": "ok"}) + "\n"
        + json.dumps({"id": "done-1", "status": "ok"}) + "\n"
        + '{"id": "torn'  # SIGKILL mid-write
    )
    specs = [validate_spec("done-1"), validate_spec("done-2"),
             validate_spec("fresh")]
    report = Supervisor().run_batch(
        specs, results_path=str(log), resume=True
    )
    assert report.skipped == 2
    assert report.executed == 1
    assert report.by_status == {OK: 1}  # executed-only, as documented
    # last-wins: done-1's final status is ok, so nothing resumed failed
    assert report.resumed_by_status == {OK: 2}
    assert report.exit_code() == EXIT_OK


def test_resumed_failures_still_fail_the_batch(tmp_path):
    log = tmp_path / "results.jsonl"
    log.write_text(
        json.dumps({"id": "bad", "status": "type-error"}) + "\n"
    )
    report = Supervisor().run_batch(
        [validate_spec("bad"), validate_spec("fresh")],
        results_path=str(log), resume=True,
    )
    assert report.by_status == {OK: 1}
    assert report.resumed_by_status == {TYPE_ERROR: 1}
    # the pre-crash failure survives into the resumed run's exit code
    assert report.exit_code() == EXIT_TYPE_ERROR


def test_batch_exit_code_severity():
    def report(*statuses):
        return BatchReport(
            total=len(statuses), executed=len(statuses), skipped=0,
            results=[
                JobResult(id=str(i), status=status, attempts=1,
                          wall_seconds=0.0)
                for i, status in enumerate(statuses)
            ],
        )

    assert report(OK, OK).exit_code() == EXIT_OK
    assert report(OK, TYPE_ERROR).exit_code() == EXIT_TYPE_ERROR
    assert report(TYPE_ERROR, USAGE_ERROR).exit_code() == EXIT_USAGE
    assert report(TYPE_ERROR, EXHAUSTED).exit_code() == EXIT_EXHAUSTED
    assert report(EXHAUSTED, TIMEOUT).exit_code() == EXIT_CRASHED
    assert report(OK, OOM, TYPE_ERROR).exit_code() == EXIT_CRASHED
    assert report(CRASHED).exit_code() == EXIT_CRASHED
