"""k-pebble tree automata and AGAP acceptance (Definition 4.5)."""

import pytest

from repro.errors import PebbleMachineError
from repro.pebble import (
    Branch0,
    Branch2,
    Emit0,
    Move,
    PebbleAutomaton,
    Pick,
    Place,
    RuleSet,
)
from repro.trees import RankedAlphabet, leaf, node, random_btree

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def has_b_leaf_automaton() -> PebbleAutomaton:
    """Walks down nondeterministically looking for a b leaf."""
    rules = RuleSet()
    rules.add(None, "q", Move("down-left", "q"))
    rules.add(None, "q", Move("down-right", "q"))
    rules.add("b", "q", Branch0())
    return PebbleAutomaton(ALPHA, [["q"]], "q", rules)


def all_leaves_a_automaton() -> PebbleAutomaton:
    """Branching: both subtrees must satisfy the condition."""
    rules = RuleSet()
    rules.add(["f", "g"], "q", Branch2("l", "r"))
    rules.add(None, "l", Move("down-left", "q"))
    rules.add(None, "r", Move("down-right", "q"))
    rules.add("a", "q", Branch0())
    return PebbleAutomaton(ALPHA, [["q", "l", "r"]], "q", rules)


class TestAcceptance:
    def test_or_nondeterminism(self, rng):
        automaton = has_b_leaf_automaton()
        for _ in range(40):
            tree = random_btree(ALPHA, rng.randint(1, 9), rng)
            assert automaton.accepts(tree) == ("b" in tree.leaf_labels())

    def test_and_branching(self, rng):
        automaton = all_leaves_a_automaton()
        for _ in range(40):
            tree = random_btree(ALPHA, rng.randint(1, 9), rng)
            assert automaton.accepts(tree) == (tree.leaf_labels() == {"a"})

    def test_two_pebble_place_and_pick(self, rng):
        """Leftmost leaf of some subtree is 'a' <=> some leaf is 'a'."""
        rules = RuleSet()
        rules.add(None, "p1", Move("down-left", "p1"))
        rules.add(None, "p1", Move("down-right", "p1"))
        rules.add(None, "p1", Place("p2"))
        rules.add(None, "p2", Move("down-left", "p2"), pebbles=(0,))
        rules.add(None, "p2", Move("down-right", "p2"), pebbles=(0,))
        rules.add(None, "p2", Move("stay", "lft"), pebbles=(1,))
        rules.add(["f", "g"], "lft", Move("down-left", "lft"), pebbles=None)
        rules.add("a", "lft", Pick("win"), pebbles=None)
        rules.add(None, "win", Branch0())
        automaton = PebbleAutomaton(
            ALPHA, [["p1", "win"], ["p2", "lft"]], "p1", rules
        )
        for _ in range(30):
            tree = random_btree(ALPHA, rng.randint(1, 8), rng)
            assert automaton.accepts(tree) == ("a" in tree.leaf_labels())

    def test_accessible_configs_returned(self):
        automaton = has_b_leaf_automaton()
        configs = automaton.accessible_configs(node("f", leaf("a"), leaf("b")))
        assert configs is not None
        assert ("q", (0,)) in configs  # the initial configuration

    def test_config_budget(self):
        automaton = has_b_leaf_automaton()
        with pytest.raises(PebbleMachineError):
            automaton.accepts(
                node("f", leaf("b"), leaf("b")), max_configs=1
            )

    def test_has_branching(self):
        assert all_leaves_a_automaton().has_branching()
        assert not has_b_leaf_automaton().has_branching()


class TestValidation:
    def test_emit_rejected_in_automaton(self):
        rules = RuleSet().add("a", "q", Emit0("a"))
        with pytest.raises(PebbleMachineError):
            PebbleAutomaton(ALPHA, [["q"]], "q", rules)

    def test_branch2_same_level(self):
        rules = RuleSet().add("a", "q", Branch2("q", "deep"))
        with pytest.raises(PebbleMachineError):
            PebbleAutomaton(ALPHA, [["q"], ["deep"]], "q", rules)

    def test_place_beyond_k(self):
        rules = RuleSet().add("a", "q2", Place("q"))
        with pytest.raises(PebbleMachineError):
            PebbleAutomaton(ALPHA, [["q"], ["q2"]], "q", rules)
