"""Tests for the unranked-to-binary encoding — Figure 1 of the paper."""

import pytest
from hypothesis import given

from conftest import utrees
from repro.errors import TreeError
from repro.trees import (
    BTree,
    decode,
    encode,
    encoded_address,
    element_nodes,
    is_encoding,
    leaf,
    node,
    parse_btree,
    parse_utree,
    u,
)


class TestFigure1:
    def test_paper_example_exactly(self):
        """encode(a(b,b,c(d),e)) = a(-(b,-(b,-(c(-(d,|),|),-(e,|)))),|)."""
        tree = parse_utree("a(b, b, c(d), e)")
        expected = parse_btree(
            "a(-(b(|,|),-(b(|,|),-(c(-(d(|,|),|),|),-(e(|,|),|)))),|)"
        )
        assert encode(tree) == expected

    def test_single_leaf(self):
        assert encode(u("a")) == parse_btree("a(|,|)")

    def test_encoding_is_complete_binary(self):
        tree = encode(parse_utree("a(b, c(d, e), f)"))
        for sub, _ in tree.walk():
            assert (sub.left is None) == (sub.right is None)


class TestRoundTrip:
    @given(utrees())
    def test_decode_encode_identity(self, tree):
        assert decode(encode(tree)) == tree

    @given(utrees())
    def test_encoded_size(self, tree):
        # each element contributes itself + its pad + one cons cell (for
        # all but the root) + one nil per chain: |encode(t)| = 4|t| - 1.
        assert encode(tree).size() == 4 * tree.size() - 1

    @given(utrees())
    def test_is_encoding(self, tree):
        assert is_encoding(encode(tree))

    def test_not_an_encoding(self):
        assert not is_encoding(leaf("|"))
        assert not is_encoding(node("-", leaf("|"), leaf("|")))
        assert not is_encoding(node("a", leaf("|"), node("a", leaf("|"),
                                                         leaf("|"))))

    def test_decode_rejects_malformed(self):
        with pytest.raises(TreeError):
            decode(BTree("a"))
        with pytest.raises(TreeError):
            decode(node("-", leaf("|"), leaf("|")))


class TestNodeCorrespondence:
    """The one-to-one label-preserving mapping (Section 2.1)."""

    @given(utrees())
    def test_encoded_address_label_preserving(self, tree):
        encoded = encode(tree)
        for original, address in tree.walk():
            binary_address = encoded_address(tree, address)
            assert encoded.subtree(binary_address).label == original.label

    @given(utrees())
    def test_encoded_subtree_is_encoding_of_subtree(self, tree):
        """The encoded subtree at an element node is exactly the encoding
        of the original subtree — the property the selection transducer's
        copy phase relies on."""
        encoded = encode(tree)
        for original, address in tree.walk():
            binary_address = encoded_address(tree, address)
            assert encoded.subtree(binary_address) == encode(original)

    @given(utrees())
    def test_element_nodes_in_document_order(self, tree):
        encoded = encode(tree)
        labels = [label for _, label in element_nodes(encoded)]
        assert labels == [node.label for node, _ in tree.walk()]
