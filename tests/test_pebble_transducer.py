"""Tests for the k-pebble transducer model itself (Definition 3.1)."""

import pytest

from repro.errors import PebbleMachineError, TransducerRuntimeError
from repro.pebble import (
    Branch0,
    Emit0,
    Emit2,
    Move,
    PebbleTransducer,
    Pick,
    Place,
    RuleSet,
    copy_transducer,
    evaluate,
)
from repro.trees import RankedAlphabet, leaf, node

ALPHA = RankedAlphabet(leaves={"a"}, internals={"f"})


def tiny(rules: RuleSet, levels=None, initial="q") -> PebbleTransducer:
    return PebbleTransducer(
        input_alphabet=ALPHA,
        output_alphabet=ALPHA,
        levels=levels or [["q", "p"]],
        initial=initial,
        rules=rules,
    )


class TestValidation:
    def test_initial_must_be_level_one(self):
        rules = RuleSet().add("a", "q2", Emit0("a"))
        with pytest.raises(PebbleMachineError):
            PebbleTransducer(ALPHA, ALPHA, [["q1"], ["q2"]], "q2", rules)

    def test_move_stays_in_level(self):
        rules = RuleSet().add("f", "q1", Move("down-left", "q2"))
        with pytest.raises(PebbleMachineError):
            PebbleTransducer(ALPHA, ALPHA, [["q1"], ["q2"]], "q1", rules)

    def test_place_targets_next_level(self):
        rules = RuleSet().add("a", "q", Place("q"))
        with pytest.raises(PebbleMachineError):
            tiny(rules)

    def test_pick_forbidden_at_level_one(self):
        rules = RuleSet().add("a", "q", Pick("q"))
        with pytest.raises(PebbleMachineError):
            tiny(rules)

    def test_emit_symbol_rank_checked(self):
        from repro.errors import AlphabetError

        with pytest.raises(AlphabetError):
            tiny(RuleSet().add("a", "q", Emit0("f")))
        with pytest.raises(AlphabetError):
            tiny(RuleSet().add("a", "q", Emit2("a", "q", "q")))

    def test_branch_actions_rejected_in_transducer(self):
        with pytest.raises(PebbleMachineError):
            tiny(RuleSet().add("a", "q", Branch0()))

    def test_duplicate_state_across_levels(self):
        rules = RuleSet().add("a", "q", Emit0("a"))
        with pytest.raises(PebbleMachineError):
            PebbleTransducer(ALPHA, ALPHA, [["q"], ["q"]], "q", rules)

    def test_unknown_direction(self):
        with pytest.raises(PebbleMachineError):
            Move("sideways", "q")

    def test_guard_bits_length(self):
        rules = RuleSet().add("a", "q", Emit0("a"), pebbles=(1,))
        with pytest.raises(PebbleMachineError):
            tiny(rules)  # level-1 state takes no pebble bits

    def test_partial_pebble_guard_expansion(self):
        rules = RuleSet()
        rules.add("a", "p2", Emit0("a"), pebbles={1: 1})
        machine = PebbleTransducer(
            ALPHA, ALPHA, [["q"], ["p2"]], "q",
            rules.add("a", "q", Place("p2")),
        )
        assert machine.actions_for("a", "p2", (1,))
        assert not machine.actions_for("a", "p2", (0,))

    def test_partial_guard_out_of_range(self):
        rules = RuleSet().add("a", "q", Emit0("a"), pebbles={3: 1})
        with pytest.raises(PebbleMachineError):
            tiny(rules)

    def test_stats_and_determinism(self):
        machine = copy_transducer(
            RankedAlphabet(leaves={"a", "b"}, internals={"f"})
        )
        stats = machine.stats()
        assert stats["pebbles"] == 1
        assert stats["states"] == 3
        assert machine.is_deterministic()


class TestEvaluation:
    def test_stuck_branch_means_no_output(self):
        # no rule for leaves: the machine gets stuck on any leaf
        rules = RuleSet().add("f", "q", Emit2("f", "p", "p"))
        rules.add("f", "p", Move("down-left", "q"))
        machine = tiny(rules)
        assert evaluate(machine, node("f", leaf("a"), leaf("a"))) is None

    def test_move_loop_means_no_output(self):
        rules = RuleSet().add("a", "q", Move("stay", "p"))
        rules.add("a", "p", Move("stay", "q"))
        machine = tiny(rules)
        assert evaluate(machine, leaf("a")) is None

    def test_genuine_nondeterminism_raises(self):
        rules = RuleSet()
        rules.add("a", "q", Emit0("a"))
        rules.add("a", "q", Move("stay", "p"))
        machine = tiny(rules)
        with pytest.raises(TransducerRuntimeError):
            evaluate(machine, leaf("a"))

    def test_effective_determinism_allowed(self):
        """Example 3.4 style: up-left/up-right under one guard."""
        rules = RuleSet()
        rules.add("f", "q", Move("down-left", "p"))
        rules.add("a", "p", Move("up-left", "p2"))
        rules.add("a", "p", Move("up-right", "p3"))  # never applies here
        rules.add("f", "p2", Emit0("a"))
        rules.add("f", "p3", Emit0("a"))
        machine = PebbleTransducer(
            ALPHA, ALPHA, [["q", "p", "p2", "p3"]], "q", rules
        )
        assert evaluate(machine, node("f", leaf("a"), leaf("a"))) == leaf("a")

    def test_step_budget(self):
        from repro.errors import ResourceExhausted
        from repro.pebble.builders import exponential_transducer
        from repro.data.generators import full_binary_tree

        machine = exponential_transducer(ALPHA)
        tree = full_binary_tree(ALPHA, 3, "f", "a")
        with pytest.raises(ResourceExhausted) as info:
            evaluate(machine, tree, max_steps=5)
        assert info.value.reason == "steps"
        assert info.value.phase == "evaluate"
        assert info.value.steps > 5
