"""The persistent disk cache: durability, corruption, and key stability.

What ISSUE 6 actually depends on, tested directly:

* records survive close/reopen, and **only** checksummed records are
  ever returned — a flipped byte is a miss, not garbage;
* a torn tail (``kill -9`` mid-append, simulated by truncation and by
  the real ``cache:torn-write`` crash fault in a subprocess) never
  hides the committed records before it, and :meth:`DiskCache.recover`
  truncates it away;
* memo keys are **process-stable**: the same automaton produces the
  same :func:`memo_key` string under different ``PYTHONHASHSEED``\\ s —
  without this the disk cache would silently never hit across restarts;
* compaction squeezes multiple segments into one without losing a
  record, skips gracefully when the lock is contended (the
  ``cache:stale-lock`` fault), and a crashed compaction's ``.tmp``
  orphan is discarded on the next open;
* :func:`memoized` integrates the tier: computed once with the disk
  installed, a value survives :func:`clear_cache` (a "fresh process")
  and comes back as a persistent hit that charges the governor.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.runtime.cache import (
    GLOBAL_CACHE,
    MemoCache,
    cache_stats,
    clear_cache,
    install_persistent,
    memo_key,
    memoized,
    persistent_tier,
    stable_repr,
)
from repro.runtime.diskcache import RECORD_MAGIC, DiskCache
from repro.runtime.faults import FaultPlan, FaultSpec, injected_faults

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(autouse=True)
def _no_leftover_tier():
    yield
    install_persistent(None)
    clear_cache()


def _env():
    return {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            filter(None, [SRC_DIR, os.environ.get("PYTHONPATH")])
        ),
    }


# -- basic durability --------------------------------------------------------


def test_roundtrip_and_reopen(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    assert cache.put("k1", {"a": [1, 2, 3]})
    assert cache.put("k2", "hello")
    assert cache.get("k1") == {"a": [1, 2, 3]}
    cache.close()

    reopened = DiskCache(tmp_path / "cache")
    assert reopened.get("k1") == {"a": [1, 2, 3]}
    assert reopened.get("k2") == "hello"
    assert reopened.get("missing", "dflt") == "dflt"
    assert len(reopened) == 2
    assert sorted(reopened.keys()) == ["k1", "k2"]
    assert "k1" in reopened


def test_read_own_buffered_write(tmp_path):
    # sync="flush" buffers in the writer; a same-process get() must
    # still see the record (visibility without durability)
    cache = DiskCache(tmp_path / "cache", sync="flush")
    cache.put("k", "v")
    assert cache.get("k") == "v"


def test_duplicate_put_is_skipped(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    assert cache.put("k", "v")
    stores_before = cache.stores
    assert cache.put("k", "other")  # deterministic values: dup adds nothing
    assert cache.stores == stores_before
    assert cache.get("k") == "v"


def test_unpicklable_and_oversize_values_are_skipped(tmp_path):
    cache = DiskCache(tmp_path / "cache", max_value_bytes=64)
    assert not cache.put("fn", lambda x: x)  # noqa: E731
    assert cache.unpicklable_skipped == 1
    assert not cache.put("big", "x" * 1024)
    assert cache.oversize_skipped == 1
    assert len(cache) == 0


# -- corruption and torn tails -----------------------------------------------


def _segment_file(directory):
    (path,) = list((directory / "segments").glob("*.seg"))
    return path


def test_corrupted_record_is_a_miss_not_garbage(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    cache.put("key", "payload-payload-payload")
    path = _segment_file(tmp_path / "cache")
    data = bytearray(path.read_bytes())
    data[-3] ^= 0xFF  # flip a byte inside the pickled value
    path.write_bytes(data)

    assert cache.get("key", "dflt") == "dflt"
    assert cache.corrupt_reads == 1
    assert cache.get("key", "dflt") == "dflt"  # and stays deindexed


def test_torn_tail_hides_only_the_torn_record(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    cache.put("first", "one")
    cache.put("second", "two")
    cache.close()
    path = _segment_file(tmp_path / "cache")
    size = path.stat().st_size
    with open(path, "rb+") as handle:
        handle.truncate(size - 7)  # tear the tail of the second record

    reopened = DiskCache(tmp_path / "cache")
    assert reopened.get("first") == "one"
    assert reopened.get("second", "gone") == "gone"

    summary = reopened.recover()
    assert summary["entries"] == 1
    assert summary["torn_segments_truncated"] == 1
    assert path.stat().st_size < size - 7  # tail truncated for good
    assert reopened.get("first") == "one"


def test_scribbled_frame_stops_the_scan_at_a_good_boundary(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    cache.put("good", "value")
    cache.close()
    path = _segment_file(tmp_path / "cache")
    with open(path, "ab") as handle:
        handle.write(b"\x00garbage-that-is-not-a-frame" * 4)

    reopened = DiskCache(tmp_path / "cache")
    assert reopened.get("good") == "value"
    summary = reopened.recover()
    assert summary["entries"] == 1
    assert summary["torn_segments_truncated"] == 1


def test_torn_write_fault_leaves_recoverable_directory(tmp_path):
    """The real thing: SIGKILL between the two halves of an append."""
    directory = tmp_path / "cache"
    script = textwrap.dedent(
        """
        import json, sys
        from repro.runtime.diskcache import DiskCache
        from repro.runtime.faults import FaultPlan, FaultSpec, install_plan

        cache = DiskCache(sys.argv[1], sync="always")
        cache.put("committed", "survives the kill")
        install_plan(FaultPlan(points={
            "cache:torn-write": FaultSpec(action="crash"),
        }))
        cache.put("torn", "never lands")  # SIGKILL fires mid-record
        print("unreachable")
        """
    )
    process = subprocess.run(
        [sys.executable, "-c", script, str(directory)],
        env=_env(), capture_output=True, text=True, timeout=60,
    )
    assert process.returncode == -9, process.stderr
    assert "unreachable" not in process.stdout

    # the segment really is torn: longer than the committed record alone
    path = _segment_file(directory)
    torn_size = path.stat().st_size

    recovered = DiskCache(directory)
    summary = recovered.recover()
    assert summary["entries"] == 1
    assert summary["torn_segments_truncated"] == 1
    assert recovered.get("committed") == "survives the kill"
    assert recovered.get("torn", "gone") == "gone"
    assert path.stat().st_size < torn_size


# -- compaction --------------------------------------------------------------


def test_compaction_merges_segments_without_losing_records(tmp_path):
    directory = tmp_path / "cache"
    first = DiskCache(directory, sync="always")
    first.put("a", 1)
    first.close()
    second = DiskCache(directory, sync="always")
    second.put("b", 2)
    second.put("a", 1)  # already indexed: skipped, no duplicate record
    second.close()
    assert len(list((directory / "segments").glob("*.seg"))) == 2

    compactor = DiskCache(directory)
    assert compactor.compact()
    assert compactor.compactions == 1
    assert len(list((directory / "segments").glob("*.seg"))) == 1
    assert compactor.get("a") == 1
    assert compactor.get("b") == 2

    # and the compacted segment is what a fresh open sees
    fresh = DiskCache(directory)
    assert fresh.get("a") == 1
    assert fresh.get("b") == 2


def test_stale_lock_fault_skips_compaction_gracefully(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    cache.put("a", 1)
    plan = FaultPlan(points={
        "cache:stale-lock": FaultSpec(action="exception"),
    })
    with injected_faults(plan):
        assert not cache.compact(timeout=0.2)
    assert cache.compactions_skipped == 1
    assert cache.get("a") == 1  # merely un-compacted, never unavailable
    assert cache.compact()  # lock released: the next attempt succeeds


def test_orphan_compaction_tmp_is_discarded_on_open(tmp_path):
    directory = tmp_path / "cache"
    cache = DiskCache(directory, sync="always")
    cache.put("a", 1)
    cache.close()
    orphan = directory / "segments" / "compact-12345.tmp"
    orphan.write_bytes(b"half-written compaction output")

    reopened = DiskCache(directory)
    assert not orphan.exists()
    assert reopened.get("a") == 1


# -- key stability across processes ------------------------------------------


_KEY_SCRIPT = textwrap.dedent(
    """
    from repro.runtime.cache import memo_key, stable_repr
    from repro.automata.bottom_up import BottomUpTA
    from repro.trees.alphabet import RankedAlphabet

    alpha = RankedAlphabet(leaves={"l1", "l2"}, internals={"f", "g"})
    ta = BottomUpTA(
        alphabet=alpha,
        states={frozenset({"alpha", "beta"}), frozenset({"gamma"})},
        leaf_rules={"l1": {frozenset({"alpha", "beta"})},
                    "l2": {frozenset({"gamma"})}},
        rules={("f", frozenset({"alpha", "beta"}), frozenset({"gamma"})):
               {frozenset({"gamma"})}},
        accepting={frozenset({"gamma"})},
    )
    print(memo_key("ta.determinize", (ta,),
                   (True, frozenset({"x", "y", "z"}))))
    print(stable_repr({"b": {1, 2}, "a": frozenset({"p", "q"})}))
    """
)


def test_memo_keys_are_stable_across_hash_seeds():
    outputs = []
    for seed in ("1", "99"):
        process = subprocess.run(
            [sys.executable, "-c", _KEY_SCRIPT],
            env={**_env(), "PYTHONHASHSEED": seed},
            capture_output=True, text=True, timeout=120,
        )
        assert process.returncode == 0, process.stderr
        outputs.append(process.stdout)
    assert outputs[0] == outputs[1]
    assert "frozenset" not in outputs[0].splitlines()[1]


def test_stable_repr_orders_sets_and_dicts():
    assert stable_repr(frozenset({"b", "a"})) == stable_repr({"a", "b"})
    assert stable_repr({"b": 1, "a": 2}) == "{'a':2,'b':1}"
    assert stable_repr((1,)) == "(1,)"
    assert stable_repr([1, "x"]) == "[1,'x']"


# -- memoized() integration --------------------------------------------------


def test_memoized_writes_through_and_hits_after_cache_clear(tmp_path):
    disk = DiskCache(tmp_path / "cache", sync="always")
    calls = []

    def compute():
        calls.append(1)
        return {"answer": 42}

    with persistent_tier(disk):
        value = memoized("op.test", (), compute, extra=("k1",))
        assert value == {"answer": 42}
        assert disk.stores == 1

        clear_cache()  # simulate a fresh worker process
        again = memoized("op.test", (), compute, extra=("k1",))
        assert again == {"answer": 42}
        assert calls == [1]  # never recomputed
        assert disk.hits == 1

        stats = cache_stats()
        assert stats["persistent"]["hits"] == 1
        # the disk hit was promoted into the memory tier
        key = memo_key("op.test", (), ("k1",))
        assert GLOBAL_CACHE.lookup(key) == {"answer": 42}


def test_hydrate_preloads_a_memo_cache(tmp_path):
    disk = DiskCache(tmp_path / "cache", sync="always")
    for i in range(5):
        disk.put(f"key-{i}", i)
    memo = MemoCache()
    assert disk.hydrate(memo, limit=3) == 3
    assert disk.hydrate(memo) == 5

    loaded = 0
    for i in range(5):
        if memo.lookup(f"key-{i}") is not MemoCache._MISS:
            loaded += 1
    assert loaded == 5


def test_stats_snapshot_shape(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    cache.put("k", "v")
    cache.get("k")
    cache.get("missing")
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["segments"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["stores"] == 1
    assert stats["bytes"] > 0
    assert json.dumps(stats)  # JSON-able for the service's stats op


# -- quarantine tombstones (PR 9) --------------------------------------------


def _tombstone_cache(tmp_path) -> DiskCache:
    cache = DiskCache(tmp_path / "cache", sync="always")
    cache.put("keep", "good")
    cache.put("bad", "poisoned")
    return cache


def test_invalidate_is_a_durable_tombstone(tmp_path):
    cache = _tombstone_cache(tmp_path)
    assert cache.invalidate("bad") is True
    assert cache.invalidate("bad") is False  # already dead
    assert cache.get("bad", "MISS") == "MISS"
    assert cache.get("keep") == "good"
    assert cache.stats()["quarantined"] == 1
    cache.close()

    # a brand-new instance over the same directory must respect the
    # tombstone: the dead record is still in an older segment, but the
    # tombstone's fresh segment sorts after it (last wins)
    fresh = DiskCache(tmp_path / "cache")
    assert fresh.get("bad", "MISS") == "MISS"
    assert fresh.get("keep") == "good"
    assert len(fresh) == 1


def test_reput_after_invalidate_supersedes_the_tombstone(tmp_path):
    cache = _tombstone_cache(tmp_path)
    cache.invalidate("bad")
    assert cache.put("bad", "recomputed")  # index was popped: a real put
    assert cache.get("bad") == "recomputed"
    cache.close()

    fresh = DiskCache(tmp_path / "cache")
    assert fresh.get("bad") == "recomputed"


def test_quarantine_batch_tombstones_and_journals(tmp_path):
    cache = DiskCache(tmp_path / "cache", sync="always")
    for i in range(4):
        cache.put(f"k{i}", i)
    evicted = cache.quarantine(["k1", "k3", "ghost"],
                               reason="audit refuted a verdict")
    assert evicted == 2
    assert cache.stats()["quarantined"] == 2
    assert cache.get("k0") == 0 and cache.get("k2") == 2
    assert cache.get("k1", "MISS") == "MISS"

    entry = json.loads(cache.quarantine_path.read_text().splitlines()[0])
    assert entry["schema"] == "repro-quarantine/v1"
    assert entry["keys"] == ["k1", "k3", "ghost"]
    assert entry["evicted"] == 2
    assert entry["reason"] == "audit refuted a verdict"
    assert entry["pid"] == os.getpid()


def test_compaction_drops_tombstones_and_dead_records(tmp_path):
    cache = _tombstone_cache(tmp_path)
    cache.invalidate("bad")
    cache.close()

    compactor = DiskCache(tmp_path / "cache")
    assert compactor.compact()
    assert compactor.get("keep") == "good"
    assert compactor.get("bad", "MISS") == "MISS"
    assert compactor.stats()["segments"] == 1
    compactor.close()

    fresh = DiskCache(tmp_path / "cache")
    assert fresh.get("keep") == "good"
    assert fresh.get("bad", "MISS") == "MISS"


def test_poison_fault_corrupts_behind_a_valid_checksum(tmp_path):
    # the corruption class only the audit replay can catch: the value is
    # semantically wrong, but every framing/checksum check passes
    from repro.automata import BottomUpTA
    from repro.trees import RankedAlphabet

    alphabet = RankedAlphabet(leaves={"a", "b"}, internals={"f"})
    automaton = BottomUpTA(
        alphabet=alphabet,
        states={"ok"},
        leaf_rules={"a": {"ok"}},
        rules={("f", "ok", "ok"): {"ok"}},
        accepting={"ok"},
    )
    cache = DiskCache(tmp_path / "cache", sync="always")
    plan = FaultPlan(points={
        "cache:poison-entry": FaultSpec(action="exception"),
    })
    with injected_faults(plan):
        assert cache.put("automaton", automaton)
        cache.put("scalar", 42)  # non-automata shapes pass unharmed
    assert cache.stats()["poisoned_writes"] == 1
    assert cache.get("scalar") == 42
    poisoned = cache.get("automaton")
    assert poisoned.accepting == frozenset()  # complemented
    assert cache.stats()["corrupt_reads"] == 0  # checksum is *valid*
    cache.close()

    fresh = DiskCache(tmp_path / "cache")
    assert fresh.get("automaton").accepting == frozenset()
    assert fresh.stats()["corrupt_reads"] == 0
