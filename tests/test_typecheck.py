"""Theorem 4.4 — the typechecking engines (exact and bounded)."""

import pytest

from repro.automata import BottomUpTA, dtd_to_automaton
from repro.data import (
    paper_dtd,
    q1_input_dtd,
    q1_inverse_dtd,
    q1_output_even_dtd,
    q2_good_output_dtd,
    q2_tight_output_dtd,
)
from repro.errors import TypecheckError
from repro.lang import q1_transducer, q2_stylesheet, xslt_to_transducer
from repro.pebble import copy_transducer, evaluate, rotation_transducer
from repro.trees import RankedAlphabet, decode, encode
from repro.typecheck import as_automaton, inverse_type, typecheck
from repro.xmlio import parse_dtd

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def leaves_all_a(alphabet=ALPHA) -> BottomUpTA:
    return BottomUpTA(
        alphabet=alphabet,
        states={"ok"},
        leaf_rules={"a": {"ok"}},
        rules={(s, "ok", "ok"): {"ok"} for s in sorted(alphabet.internals)},
        accepting={"ok"},
    )


class TestExactCopy:
    def test_identity_typechecks_against_itself(self):
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        result = typecheck(machine, tau, tau, method="exact")
        assert result.ok
        assert result.counterexample_input is None

    def test_identity_fails_against_smaller_type(self, rng):
        machine = copy_transducer(ALPHA)
        tau1 = as_automaton(leaves_all_a()).complemented()  # some b leaf
        tau2 = leaves_all_a()
        result = typecheck(machine, tau1, tau2, method="exact")
        assert not result.ok
        witness = result.counterexample_input
        assert tau1.accepts(witness)
        assert not tau2.accepts(result.counterexample_output)
        # for the copy transducer, the bad output is the input itself
        assert result.counterexample_output == witness

    def test_inverse_type_of_copy_is_the_type(self):
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        assert inverse_type(machine, tau).equivalent(as_automaton(tau))


class TestExactXSLTQ2:
    """Example 4.3's query, exactly typechecked end to end."""

    def setup_method(self):
        self.machine = xslt_to_transducer(
            q2_stylesheet(), tags={"root", "a"}, root_tag="root"
        )
        self.tau1 = q1_input_dtd()

    def test_q2_against_generous_dtd(self):
        result = typecheck(self.machine, self.tau1, q2_good_output_dtd(),
                           method="exact")
        assert result.ok

    def test_q2_against_tight_dtd(self):
        result = typecheck(self.machine, self.tau1, q2_tight_output_dtd(),
                           method="exact")
        assert not result.ok
        document = decode(result.counterexample_input)
        assert document.label == "root"
        bad = decode(result.counterexample_output)
        # the actual output of Q2 on the witness, which the tight DTD rejects
        assert bad == decode(evaluate(self.machine,
                                      result.counterexample_input))
        assert not q2_tight_output_dtd().is_valid(bad)


class TestBounded:
    def test_q1_even_output_fails_on_odd_inputs(self):
        """Example 4.2: Q1 maps a^n to b^(n^2); (b.b)* fails at n odd."""
        machine = q1_transducer()
        result = typecheck(
            machine, q1_input_dtd(), q1_output_even_dtd(),
            method="bounded", max_inputs=6,
        )
        assert not result.ok
        document = decode(result.counterexample_input)
        n = len(document.children)
        assert n % 2 == 1  # odd number of a's gives odd n^2

    def test_q1_even_output_with_inverse_input_type(self):
        """...and typechecks from the paper's inverse type (a.a)*."""
        machine = q1_transducer()
        result = typecheck(
            machine, q1_inverse_dtd(), q1_output_even_dtd(),
            method="bounded", max_inputs=6,
        )
        assert result.ok
        # the enumerator explores a^0, a^2, a^4 within the default width
        assert result.stats["inputs_checked"] >= 3

    def test_q1_against_b_star(self):
        machine = q1_transducer()
        anything = parse_dtd("result := b*\nb :=")
        result = typecheck(machine, q1_input_dtd(), anything,
                           method="bounded", max_inputs=8)
        assert result.ok

    def test_bounded_counterexample_is_genuine(self):
        machine = copy_transducer(ALPHA)
        tau1 = as_automaton(leaves_all_a()).complemented()
        result = typecheck(machine, tau1, leaves_all_a(), method="bounded",
                           max_inputs=10)
        assert not result.ok
        assert tau1.accepts(result.counterexample_input)


class TestAPI:
    def test_dtd_types_accepted_directly(self):
        machine = q1_transducer()
        result = typecheck(
            machine, q1_input_dtd(), parse_dtd("result := b*\nb :="),
            method="bounded", max_inputs=4,
        )
        assert result.ok

    def test_unknown_method(self):
        machine = copy_transducer(ALPHA)
        with pytest.raises(TypecheckError):
            typecheck(machine, leaves_all_a(), leaves_all_a(),
                      method="telepathy")

    def test_bad_type_object(self):
        with pytest.raises(TypecheckError):
            as_automaton("not a type")  # type: ignore[arg-type]

    def test_result_is_truthy(self):
        machine = copy_transducer(ALPHA)
        result = typecheck(machine, leaves_all_a(), leaves_all_a(),
                           method="bounded", max_inputs=3)
        assert bool(result)
