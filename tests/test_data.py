"""Sanity tests for the sample data and generators."""

from repro.data import (
    bibliography_doc,
    bibliography_dtd,
    flat_document,
    full_binary_tree,
    paper_dtd,
    paper_tree,
    q1_input_dtd,
    q1_inverse_dtd,
    random_binary_trees,
    random_unranked_tree,
    random_words,
    right_spine,
)
from repro.trees import RankedAlphabet

ALPHA = RankedAlphabet(leaves={"a"}, internals={"f"})


class TestSamples:
    def test_paper_pair(self):
        assert paper_dtd().is_valid(paper_tree())

    def test_bibliography(self):
        assert bibliography_dtd().is_valid(bibliography_doc())

    def test_q1_dtds_nest(self):
        even = q1_inverse_dtd()
        all_ = q1_input_dtd()
        for document in even.instances(5):
            assert all_.is_valid(document)


class TestGenerators:
    def test_flat_document(self):
        document = flat_document("root", "a", 3)
        assert len(document.children) == 3
        assert document.label == "root"

    def test_full_binary_tree(self):
        tree = full_binary_tree(ALPHA, 3, "f", "a")
        assert tree.size() == 2**4 - 1
        assert tree.height() == 3

    def test_right_spine(self):
        tree = right_spine(ALPHA, 4, "f", "a")
        assert tree.height() == 4
        assert tree.size() == 9

    def test_random_streams_reproducible(self, rng):
        ones = list(random_binary_trees(ALPHA, 5, 8, seed=3))
        twos = list(random_binary_trees(ALPHA, 5, 8, seed=3))
        assert ones == twos
        words_a = list(random_words(["a", "b"], 5, 6, seed=3))
        words_b = list(random_words(["a", "b"], 5, 6, seed=3))
        assert words_a == words_b
        assert all(1 <= len(word) <= 6 for word in words_a)

    def test_random_unranked_tree_budget(self, rng):
        tree = random_unranked_tree(["a", "b"], 10, rng)
        assert 1 <= tree.size() <= 12
