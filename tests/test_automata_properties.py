"""Property-based tests of the tree-automata boolean algebra.

These pin the laws the typechecking pipeline silently relies on:
De Morgan, double complement, distributivity spot checks, inclusion
antisymmetry, and determinization/minimization idempotence.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import btrees
from repro.automata import BottomUpTA
from repro.trees import RankedAlphabet, random_btree

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def _random_automaton(seed: int) -> BottomUpTA:
    """A reproducible random bottom-up automaton over ALPHA."""
    rng = random.Random(seed)
    n_states = rng.randint(1, 3)
    states = [f"s{i}" for i in range(n_states)]
    leaf_rules = {
        symbol: {s for s in states if rng.random() < 0.6}
        for symbol in sorted(ALPHA.leaves)
    }
    rules = {}
    for symbol in sorted(ALPHA.internals):
        for left in states:
            for right in states:
                targets = {s for s in states if rng.random() < 0.35}
                if targets:
                    rules[(symbol, left, right)] = targets
    accepting = {s for s in states if rng.random() < 0.5} or {states[0]}
    return BottomUpTA(ALPHA, states, leaf_rules, rules, accepting)


AUTOMATA = st.integers(min_value=0, max_value=40).map(_random_automaton)


class TestAlgebraLaws:
    @given(AUTOMATA, btrees(max_leaves=4))
    @settings(max_examples=40, deadline=None)
    def test_double_complement(self, automaton, tree):
        assert automaton.complemented().complemented().accepts(tree) == \
            automaton.accepts(tree)

    @given(AUTOMATA, AUTOMATA, btrees(max_leaves=4))
    @settings(max_examples=30, deadline=None)
    def test_de_morgan(self, one, two, tree):
        left = one.union(two).complemented()
        right = one.complemented().intersection(two.complemented())
        assert left.accepts(tree) == right.accepts(tree)

    @given(AUTOMATA, btrees(max_leaves=4))
    @settings(max_examples=30, deadline=None)
    def test_determinize_minimize_preserve(self, automaton, tree):
        expected = automaton.accepts(tree)
        assert automaton.determinized().accepts(tree) == expected
        assert automaton.minimized().accepts(tree) == expected
        assert automaton.trimmed().accepts(tree) == expected

    @given(AUTOMATA)
    @settings(max_examples=15, deadline=None)
    def test_minimize_idempotent(self, automaton):
        once = automaton.minimized()
        twice = once.minimized()
        assert len(once.states) == len(twice.states)

    @given(AUTOMATA, AUTOMATA)
    @settings(max_examples=15, deadline=None)
    def test_inclusion_antisymmetric(self, one, two):
        if one.includes(two) and two.includes(one):
            assert one.equivalent(two)

    @given(AUTOMATA)
    @settings(max_examples=15, deadline=None)
    def test_intersection_with_complement_empty(self, automaton):
        assert automaton.intersection(automaton.complemented()).is_empty()

    @given(AUTOMATA)
    @settings(max_examples=15, deadline=None)
    def test_union_with_complement_universal(self, automaton):
        everything = automaton.union(automaton.complemented())
        # its complement accepts nothing
        assert everything.complemented().is_empty()

    @given(AUTOMATA)
    @settings(max_examples=20, deadline=None)
    def test_witness_is_accepted(self, automaton):
        witness = automaton.witness()
        if witness is None:
            assert automaton.is_empty()
        else:
            assert automaton.accepts(witness)

    @given(AUTOMATA)
    @settings(max_examples=10, deadline=None)
    def test_generate_members(self, automaton):
        for tree in automaton.generate(6):
            assert automaton.accepts(tree)
