"""Assorted coverage: CLI module entry, DTD root override, automaton
root-state introspection, RuleSet chaining."""

import subprocess
import sys

from repro.automata import dtd_to_automaton
from repro.data import paper_dtd, paper_tree
from repro.pebble import Emit0, RuleSet
from repro.trees import RankedAlphabet, encode, leaf, node
from repro.xmlio import parse_dtd_xml


class TestDTDXmlRoot:
    def test_root_override(self):
        dtd = parse_dtd_xml(
            "<!ELEMENT a (b)> <!ELEMENT b EMPTY>", root="b"
        )
        assert dtd.root == "b"
        from repro.trees import u

        assert dtd.is_valid(u("b"))
        assert not dtd.is_valid(u("a", u("b")))


class TestStatesAtRoot:
    def test_reachable_state_sets(self):
        automaton = dtd_to_automaton(paper_dtd())
        states = automaton.states_at_root(encode(paper_tree()))
        assert states & automaton.accepting
        states = automaton.states_at_root(leaf("|"))
        assert not (states & automaton.accepting)


class TestRuleSet:
    def test_chaining(self):
        alphabet = RankedAlphabet(leaves={"a"}, internals=set())
        rules = RuleSet().add("a", "q", Emit0("a")).add("a", "p", Emit0("a"))
        table = rules.build_rules(alphabet, {"q": 1, "p": 1})
        assert ("a", "q", ()) in table and ("a", "p", ()) in table


class TestModuleEntry:
    def test_python_dash_m_repro(self, tmp_path):
        dtd = tmp_path / "d.dtd"
        dtd.write_text("a := b*\nb :=")
        doc = tmp_path / "d.xml"
        doc.write_text("<a><b/></a>")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "validate", "--dtd", str(dtd),
             str(doc)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "valid" in completed.stdout

    def test_usage_error(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 2
