"""Unit tests for the move semantics (stepping) and the error hierarchy."""

import pytest

from repro import errors
from repro.pebble.stepping import guard_bits, move_successor
from repro.pebble.transducer import Move, Pick, Place
from repro.trees import IndexedTree, leaf, node


@pytest.fixture
def indexed():
    #        f(0)
    #      /      \
    #    g(1)     a(4)
    #   /    \
    #  a(2)  b(3)
    return IndexedTree(node("f", node("g", leaf("a"), leaf("b")), leaf("a")))


class TestGuardBits:
    def test_single_pebble_empty_vector(self):
        assert guard_bits((3,)) == ()

    def test_coincidence_bits(self):
        assert guard_bits((3, 1, 3)) == (1, 0)
        assert guard_bits((0, 0)) == (1,)
        assert guard_bits((1, 2)) == (0,)


class TestMoves:
    def test_stay(self, indexed):
        assert move_successor(indexed, (1,), Move("stay", "q")) == (1,)

    def test_down_moves(self, indexed):
        assert move_successor(indexed, (0,), Move("down-left", "q")) == (1,)
        assert move_successor(indexed, (0,), Move("down-right", "q")) == (4,)
        assert move_successor(indexed, (2,), Move("down-left", "q")) is None

    def test_up_moves_respect_sides(self, indexed):
        # node 2 is a left child, node 3 a right child
        assert move_successor(indexed, (2,), Move("up-left", "q")) == (1,)
        assert move_successor(indexed, (2,), Move("up-right", "q")) is None
        assert move_successor(indexed, (3,), Move("up-right", "q")) == (1,)
        assert move_successor(indexed, (3,), Move("up-left", "q")) is None

    def test_up_at_root_is_stuck(self, indexed):
        assert move_successor(indexed, (0,), Move("up-left", "q")) is None
        assert move_successor(indexed, (0,), Move("up-right", "q")) is None

    def test_only_top_pebble_moves(self, indexed):
        after = move_successor(indexed, (4, 1), Move("down-left", "q"))
        assert after == (4, 2)  # pebble 1 untouched

    def test_place_goes_to_root(self, indexed):
        assert move_successor(indexed, (3,), Place("q")) == (3, 0)

    def test_pick_drops_top(self, indexed):
        assert move_successor(indexed, (3, 2), Pick("q")) == (3,)


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        subclasses = [
            errors.TreeError,
            errors.AlphabetError,
            errors.RegexError,
            errors.RegexParseError,
            errors.XMLParseError,
            errors.DTDError,
            errors.AutomatonError,
            errors.MSOError,
            errors.PebbleMachineError,
            errors.TransducerRuntimeError,
            errors.TypecheckError,
            errors.UndecidableError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_undecidable_is_typecheck_error(self):
        assert issubclass(errors.UndecidableError, errors.TypecheckError)

    def test_positioned_messages(self):
        error = errors.RegexParseError("boom", position=7)
        assert "position 7" in str(error)
        assert error.position == 7
        error = errors.XMLParseError("bad tag", position=3)
        assert "position 3" in str(error)
