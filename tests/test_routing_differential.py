"""Differential evidence that every route returns the same verdicts.

The three exact-class routes — the Theorem 4.4 pipeline, the fast-td
triple fixpoint, and lazy backward inference — implement one decision
problem.  This suite drives all applicable routes over random
transducer/type pairs and the worked example machines and asserts:

* the boolean verdicts agree (``method="auto"`` included);
* every counterexample is *valid* evidence, not just agreement: the
  input belongs to the input type, the transducer can produce the
  recorded output on it, and that output violates the output type;
* agreement survives the representation switches: the frozenset
  reference algebra (``REPRO_REFERENCE_ALGEBRA=1``) and a disabled memo
  cache (``REPRO_CACHE=0``) — the CI routing job additionally runs the
  whole suite under those environments.
"""

import contextlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.bitset import set_reference_algebra
from repro.automata.bottom_up import BottomUpTA
from repro.lang import Apply, Out, Stylesheet, Template, xslt_to_transducer
from repro.pebble.builders import (
    copy_transducer,
    exponential_transducer,
    rotation_transducer,
)
from repro.pebble.output_automaton import output_language
from repro.pebble.transducer import Emit0, Emit2, Move, PebbleTransducer
from repro.runtime.cache import cache_disabled
from repro.trees.alphabet import RankedAlphabet
from repro.typecheck import classify, typecheck
from repro.typecheck.engine import as_automaton
from repro.xmlio import parse_dtd

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})
STATES = ["q0", "q1", "q2"]


def _type(name: str) -> BottomUpTA:
    """A small pool of types over ``ALPHA`` (usable on either side)."""
    if name == "universal":
        return BottomUpTA(
            alphabet=ALPHA, states={"x"},
            leaf_rules={"a": {"x"}, "b": {"x"}},
            rules={(s, "x", "x"): {"x"} for s in ("f", "g")},
            accepting={"x"},
        )
    if name == "all-a":
        return BottomUpTA(
            alphabet=ALPHA, states={"ok"},
            leaf_rules={"a": {"ok"}},
            rules={(s, "ok", "ok"): {"ok"} for s in ("f", "g")},
            accepting={"ok"},
        )
    if name == "no-g":
        return BottomUpTA(
            alphabet=ALPHA, states={"x"},
            leaf_rules={"a": {"x"}, "b": {"x"}},
            rules={("f", "x", "x"): {"x"}},
            accepting={"x"},
        )
    if name == "root-f":
        return BottomUpTA(
            alphabet=ALPHA, states={"x", "top"},
            leaf_rules={"a": {"x"}, "b": {"x"}},
            rules={
                ("f", "x", "x"): {"x", "top"},
                ("g", "x", "x"): {"x"},
            },
            accepting={"top"},
        )
    raise AssertionError(name)


TYPE_NAMES = ["universal", "all-a", "no-g", "root-f"]


@st.composite
def walking_transducers(draw) -> PebbleTransducer:
    """Random one-pebble transducers over ``ALPHA``.

    Same-node expansions are acyclic by construction (stay/Emit2 only
    reach higher-numbered states), but copying, stuck branches, up-moves
    and cross-node loops are all allowed — so the sample straddles the
    fast-td fragment boundary and both fast routes get exercised.
    """
    rules: dict = {}
    any_state = st.sampled_from(STATES)
    allow_up = draw(st.booleans())
    for symbol in ("f", "g"):
        for position, state in enumerate(STATES):
            higher = STATES[position + 1:]
            kinds = ["halt", "down-left", "down-right", "leaf"]
            if higher:
                kinds += ["stay", "emit2", "emit2"]
            if allow_up:
                kinds.append("up")
            kind = draw(st.sampled_from(kinds))
            if kind == "halt":
                continue
            if kind == "leaf":
                action = Emit0(draw(st.sampled_from(["a", "b"])))
            elif kind == "stay":
                action = Move("stay", draw(st.sampled_from(higher)))
            elif kind == "emit2":
                action = Emit2(
                    draw(st.sampled_from(["f", "g"])),
                    draw(st.sampled_from(higher)),
                    draw(st.sampled_from(higher)),
                )
            elif kind == "up":
                action = Move(
                    draw(st.sampled_from(["up-left", "up-right"])),
                    draw(any_state),
                )
            else:
                action = Move(kind, draw(any_state))
            rules[(symbol, state, ())] = (action,)
    for symbol in ("a", "b"):
        for state in STATES:
            kind = draw(st.sampled_from(["halt", "leaf", "leaf"]))
            if kind == "leaf":
                rules[(symbol, state, ())] = (
                    Emit0(draw(st.sampled_from(["a", "b"]))),
                )
    return PebbleTransducer(
        input_alphabet=ALPHA,
        output_alphabet=ALPHA,
        levels=[STATES],
        initial="q0",
        rules=rules,
    )


def assert_valid_counterexample(transducer, result, input_type, output_type):
    """A failing verdict must carry genuine, replayable evidence."""
    tree = result.counterexample_input
    output = result.counterexample_output
    assert tree is not None and output is not None, result.method
    tau1 = as_automaton(input_type, transducer.input_alphabet)
    tau2 = as_automaton(output_type, transducer.output_alphabet)
    assert tau1.accepts(tree), result.method
    assert output_language(transducer, tree).accepts(output), result.method
    assert not tau2.accepts(output), result.method


def run_all_routes(transducer, input_type, output_type):
    """Every applicable route's result, keyed by requested method."""
    decision = classify(transducer)
    results = {
        "exact": typecheck(
            transducer, input_type, output_type, method="exact"
        ),
        "auto": typecheck(transducer, input_type, output_type, method="auto"),
    }
    if decision.lazy_eligible:
        results["lazy"] = typecheck(
            transducer, input_type, output_type, method="lazy"
        )
    if decision.fast_eligible:
        results["fast"] = typecheck(
            transducer, input_type, output_type, method="fast"
        )
    return decision, results


def assert_routes_agree(transducer, input_type, output_type):
    decision, results = run_all_routes(transducer, input_type, output_type)
    verdicts = {name: result.ok for name, result in results.items()}
    assert len(set(verdicts.values())) == 1, (decision, verdicts)
    for result in results.values():
        if not result.ok:
            assert_valid_counterexample(
                transducer, result, input_type, output_type
            )
    return decision, results


class TestRandomPairs:
    @settings(max_examples=40, deadline=None)
    @given(
        transducer=walking_transducers(),
        input_name=st.sampled_from(TYPE_NAMES),
        output_name=st.sampled_from(TYPE_NAMES),
    )
    def test_routes_agree(self, transducer, input_name, output_name):
        assert_routes_agree(
            transducer, _type(input_name), _type(output_name)
        )

    @settings(max_examples=15, deadline=None)
    @given(
        transducer=walking_transducers(),
        output_name=st.sampled_from(TYPE_NAMES),
    )
    def test_routes_agree_without_cache(self, transducer, output_name):
        with cache_disabled():
            assert_routes_agree(
                transducer, _type("universal"), _type(output_name)
            )


WRAP_SHEET = Stylesheet([
    Template("doc", [Out("D", [Apply()])]),
    Template("sec", [Out("S", [Apply()])]),
    Template("par", [Out("P")]),
])

IN_DTD = parse_dtd("doc := sec*\nsec := par*\npar := ")
OUT_GOOD = parse_dtd("D := S*\nS := P*\nP := ")
OUT_BAD = parse_dtd("D := S.S*\nS := P*\nP := ")


def worked_examples():
    """(name, transducer, input type, output type, expected auto route,
    expected verdict)."""
    rot_alpha = RankedAlphabet(leaves={"s", "a"}, internals={"r", "f"})
    rot = rotation_transducer(rot_alpha, pivot="s", root_symbol="r")
    rot_universal_in = BottomUpTA(
        alphabet=rot_alpha, states={"x"},
        leaf_rules={s: {"x"} for s in sorted(rot_alpha.leaves)},
        rules={
            (s, "x", "x"): {"x"} for s in sorted(rot_alpha.internals)
        },
        accepting={"x"},
    )
    rot_universal_out = BottomUpTA(
        alphabet=rot.output_alphabet, states={"x"},
        leaf_rules={s: {"x"} for s in sorted(rot.output_alphabet.leaves)},
        rules={
            (s, "x", "x"): {"x"}
            for s in sorted(rot.output_alphabet.internals)
        },
        accepting={"x"},
    )
    expo = exponential_transducer(ALPHA)
    expo_universal_out = BottomUpTA(
        alphabet=expo.output_alphabet, states={"x"},
        leaf_rules={s: {"x"} for s in sorted(expo.output_alphabet.leaves)},
        rules={
            (s, "x", "x"): {"x"}
            for s in sorted(expo.output_alphabet.internals)
        },
        accepting={"x"},
    )
    xslt = xslt_to_transducer(WRAP_SHEET, tags=IN_DTD.symbols, root_tag="doc")
    return [
        ("copy-ok", copy_transducer(ALPHA), _type("universal"),
         _type("universal"), "fast-td", True),
        ("copy-bad", copy_transducer(ALPHA), _type("universal"),
         _type("all-a"), "fast-td", False),
        ("exponential-ok", expo, _type("all-a"), expo_universal_out,
         "lazy-backward", True),
        ("rotation-ok", rot, rot_universal_in, rot_universal_out,
         "lazy-backward", True),
        ("xslt-wrap-ok", xslt, IN_DTD, OUT_GOOD, None, True),
        ("xslt-wrap-bad", xslt, IN_DTD, OUT_BAD, None, False),
    ]


@contextlib.contextmanager
def reference_algebra():
    previous = set_reference_algebra(True)
    try:
        yield
    finally:
        set_reference_algebra(previous)


class TestWorkedExamples:
    @pytest.mark.parametrize(
        "name,transducer,input_type,output_type,route,expected",
        worked_examples(),
        ids=[case[0] for case in worked_examples()],
    )
    def test_routes_agree(
        self, name, transducer, input_type, output_type, route, expected
    ):
        decision, results = assert_routes_agree(
            transducer, input_type, output_type
        )
        assert results["exact"].ok is expected
        if route is not None:
            assert decision.route == route
            assert results["auto"].method == route

    def test_at_least_two_examples_route_off_the_exact_pipeline(self):
        routed = [
            name
            for name, transducer, *_ in worked_examples()
            if classify(transducer).route != "exact"
        ]
        assert len(routed) >= 2

    @pytest.mark.parametrize("switch", ["reference-algebra", "no-cache"])
    def test_agreement_survives_representation_switches(self, switch):
        context = (
            reference_algebra()
            if switch == "reference-algebra"
            else cache_disabled()
        )
        with context:
            for name, transducer, tau1, tau2, _, expected in \
                    worked_examples():
                _, results = assert_routes_agree(transducer, tau1, tau2)
                assert results["exact"].ok is expected, name
