"""Unit tests for the annotation machinery behind the MSO compiler and
the Theorem 4.7 pipeline."""

import pytest
from hypothesis import given

from conftest import btrees
from repro.errors import MSOError
from repro.mso import (
    annotate_tree,
    cylindrify,
    project,
    singleton_automaton,
    strip_annotations,
)
from repro.mso.annotations import all_bits, annotated_alphabet, pack, unpack
from repro.mso.compile import compile_formula
from repro.mso.syntax import Label
from repro.trees import RankedAlphabet, leaf, node

BASE = RankedAlphabet(leaves={"a", "b"}, internals={"f"})


class TestPacking:
    def test_roundtrip(self):
        for bits in all_bits(3):
            assert unpack(pack("sym", bits)) == ("sym", bits)

    def test_zero_vars_identity(self):
        assert pack("f", ()) == "f"
        assert annotated_alphabet(BASE, 0) is BASE

    def test_alphabet_sizes(self):
        annotated = annotated_alphabet(BASE, 2)
        assert len(annotated.leaves) == 2 * 4
        assert len(annotated.internals) == 1 * 4


class TestCylindrifyProject:
    def _label_automaton(self):
        compiled = compile_formula(Label("a", "x"), BASE)
        return compiled.automaton

    def test_cylindrify_then_project_is_identity(self):
        automaton = self._label_automaton()
        widened = cylindrify(automaton, BASE, ("x",), ("S", "x"))
        narrowed = project(widened, BASE, ("S", "x"), ["S"])
        tree = node("f", leaf("a"), leaf("b"))
        annotated = annotate_tree(tree, ["x"], {"x": (0,)})
        assert automaton.accepts(annotated) == narrowed.accepts(annotated)

    def test_cylindrify_requires_superset(self):
        automaton = self._label_automaton()
        with pytest.raises(MSOError):
            cylindrify(automaton, BASE, ("x",), ("S",))

    def test_project_unknown_var(self):
        automaton = self._label_automaton()
        with pytest.raises(MSOError):
            project(automaton, BASE, ("x",), ["zzz"])

    @given(btrees(leaves=("a", "b"), internals=("f",), max_leaves=4))
    def test_cylindrified_ignores_new_bits(self, tree):
        automaton = self._label_automaton()
        widened = cylindrify(automaton, BASE, ("x",), ("S", "x"))
        addresses = [addr for _, addr in tree.walk()]
        for x in addresses:
            plain = annotate_tree(tree, ["x"], {"x": x})
            marked = annotate_tree(tree, ["S", "x"],
                                   {"S": set(addresses), "x": x})
            unmarked = annotate_tree(tree, ["S", "x"], {"S": [], "x": x})
            want = automaton.accepts(plain)
            assert widened.accepts(marked) == want
            assert widened.accepts(unmarked) == want


class TestSingleton:
    @given(btrees(leaves=("a", "b"), internals=("f",), max_leaves=4))
    def test_exactly_one_bit(self, tree):
        sing = singleton_automaton(BASE, ("x",), "x")
        addresses = [addr for _, addr in tree.walk()]
        for x in addresses:
            assert sing.accepts(annotate_tree(tree, ["x"], {"x": x}))
        assert not sing.accepts(annotate_tree(tree, ["x"], {"x": []}))
        if len(addresses) >= 2:
            double = annotate_tree(tree, ["x"], {"x": addresses[:2]})
            assert not sing.accepts(double)

    def test_strip(self):
        tree = node("f", leaf("a"), leaf("b"))
        annotated = annotate_tree(tree, ["x"], {"x": (0,)})
        assert strip_annotations(annotated) == tree
