"""Route selection: the classifier, the method flag, and the wiring.

The differential evidence that the three exact-class routes agree lives
in ``tests/test_routing_differential.py``; this module pins the routing
*mechanics* — which machines classify where, what ``method=`` values
do, what lands in stats and trace spans, and how degradation and audit
compose with the fast routes.
"""

import pytest

from repro.automata.bottom_up import BottomUpTA
from repro.errors import TypecheckError
from repro.pebble.builders import (
    copy_transducer,
    exponential_transducer,
    rotation_transducer,
)
from repro.pebble.transducer import Emit0, Emit2, Move, PebbleTransducer
from repro.runtime.trace import Tracer, tracing
from repro.trees.alphabet import RankedAlphabet
from repro.typecheck import classify, typecheck
from repro.typecheck.engine import DEGRADED_SUFFIX, EXACT_METHODS

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def universal(alphabet=ALPHA) -> BottomUpTA:
    return BottomUpTA(
        alphabet=alphabet,
        states={"x"},
        leaf_rules={s: {"x"} for s in sorted(alphabet.leaves)},
        rules={(s, "x", "x"): {"x"} for s in sorted(alphabet.internals)},
        accepting={"x"},
    )


def leaves_all_a(alphabet=ALPHA) -> BottomUpTA:
    return BottomUpTA(
        alphabet=alphabet,
        states={"ok"},
        leaf_rules={"a": {"ok"}},
        rules={(s, "ok", "ok"): {"ok"} for s in sorted(alphabet.internals)},
        accepting={"ok"},
    )


def two_pebble_machine() -> PebbleTransducer:
    """A trivial 2-pebble transducer (never runs; classification only)."""
    from repro.pebble.transducer import Place

    rules = {
        ("a", "q", ()): (Place("r"),),
        ("a", "r", (0,)): (Emit0("a"),),
    }
    return PebbleTransducer(
        input_alphabet=ALPHA,
        output_alphabet=ALPHA,
        levels=[["q"], ["r"]],
        initial="q",
        rules=rules,
    )


class TestClassifier:
    def test_copy_is_fast(self):
        decision = classify(copy_transducer(ALPHA))
        assert decision.route == "fast-td"
        assert decision.fast_eligible and decision.lazy_eligible
        assert decision.reasons == ()

    def test_exponential_declined_for_copying(self):
        decision = classify(exponential_transducer(ALPHA))
        assert decision.route == "lazy-backward"
        assert not decision.fast_eligible and decision.lazy_eligible
        assert any("non-linear" in reason for reason in decision.reasons)

    def test_rotation_declined_for_up_moves(self):
        alpha = RankedAlphabet(leaves={"s", "a"}, internals={"r", "f"})
        decision = classify(
            rotation_transducer(alpha, pivot="s", root_symbol="r")
        )
        assert decision.route == "lazy-backward"
        reasons = " ".join(decision.reasons)
        assert "up" in reasons and "nondeterministic" in reasons

    def test_extra_pebbles_force_exact(self):
        decision = classify(two_pebble_machine())
        assert decision.route == "exact"
        assert not decision.fast_eligible and not decision.lazy_eligible

    def test_stay_loop_declined(self):
        rules = {
            ("a", "q", ()): (Move("stay", "q"),),
        }
        machine = PebbleTransducer(
            input_alphabet=ALPHA, output_alphabet=ALPHA,
            levels=[["q"]], initial="q", rules=rules,
        )
        decision = classify(machine)
        assert not decision.fast_eligible
        assert any("loop" in reason for reason in decision.reasons)

    def test_double_descent_same_side_declined(self):
        # f(q) -> f(q1, q2) with *both* branches reading the left child
        rules = {
            ("f", "q", ()): (Emit2("f", "q1", "q2"),),
            ("f", "q1", ()): (Move("down-left", "q"),),
            ("f", "q2", ()): (Move("down-left", "q"),),
            ("a", "q", ()): (Emit0("a"),),
        }
        machine = PebbleTransducer(
            input_alphabet=ALPHA, output_alphabet=ALPHA,
            levels=[["q", "q1", "q2"]], initial="q", rules=rules,
        )
        decision = classify(machine)
        assert not decision.fast_eligible
        assert any("non-linear" in reason for reason in decision.reasons)

    def test_classifier_is_pure_syntax(self):
        # same machine, same answer — no automata are built
        machine = copy_transducer(ALPHA)
        assert classify(machine) == classify(machine)


class TestMethodFlag:
    def test_auto_reports_route_in_stats(self):
        result = typecheck(
            copy_transducer(ALPHA), universal(), universal(), method="auto"
        )
        assert result.ok and result.method == "fast-td"
        routing = result.stats["routing"]
        assert routing["requested"] == "auto"
        assert routing["route"] == "fast-td"
        assert routing["fast_eligible"] is True

    def test_exact_method_bypasses_classifier(self):
        result = typecheck(
            copy_transducer(ALPHA), universal(), universal(), method="exact"
        )
        assert result.method == "exact"
        assert "routing" not in result.stats

    def test_forced_fast_on_ineligible_machine_raises(self):
        with pytest.raises(TypecheckError, match="fast top-down fragment"):
            typecheck(
                exponential_transducer(ALPHA), universal(),
                universal(exponential_transducer(ALPHA).output_alphabet),
                method="fast",
            )

    def test_forced_lazy_on_multi_pebble_machine_raises(self):
        with pytest.raises(TypecheckError, match="single head"):
            typecheck(
                two_pebble_machine(), universal(), universal(),
                method="lazy",
            )

    def test_unknown_method_still_rejected(self):
        with pytest.raises(TypecheckError, match="telepathy"):
            typecheck(
                copy_transducer(ALPHA), universal(), universal(),
                method="telepathy",
            )

    def test_auto_on_multi_pebble_machine_falls_back_to_exact(self):
        machine = two_pebble_machine()
        result = typecheck(machine, universal(), universal(), method="auto")
        assert result.method == "exact"
        assert result.stats["routing"]["route"] == "exact"


class TestTraceSpans:
    def span_names(self, method):
        tracer = Tracer()
        with tracing(tracer):
            typecheck(
                copy_transducer(ALPHA), universal(), universal(),
                method=method,
            )
        names = set()
        stack = [tracer.root]
        while stack:
            span = stack.pop()
            names.add(span.name)
            stack.extend(span.children)
        return names

    def test_auto_emits_routing_spans(self):
        names = self.span_names("auto")
        assert "route:classify" in names
        assert "route:fast-td" in names
        assert "exact" not in names

    def test_lazy_emits_its_span(self):
        names = self.span_names("lazy")
        assert "route:lazy-backward" in names

    def test_exact_trace_is_unchanged(self):
        names = self.span_names("exact")
        assert "exact" in names
        assert "route:classify" not in names


class TestDegradation:
    def test_fast_route_degrades_to_bounded(self):
        result = typecheck(
            copy_transducer(ALPHA), universal(), universal(),
            method="fast", max_steps=1, fallback=True,
        )
        assert result.method == "fast-td" + DEGRADED_SUFFIX
        assert result.stats["degraded"] is True
        assert result.stats["exact_exhausted"]["reason"] == "steps"
        assert result.method not in EXACT_METHODS

    def test_lazy_route_degrades_to_bounded(self):
        result = typecheck(
            copy_transducer(ALPHA), universal(), universal(),
            method="lazy", max_steps=1, fallback=True,
        )
        assert result.method == "lazy-backward" + DEGRADED_SUFFIX


class TestAuditComposition:
    def test_fast_ok_is_certifiable_in_full_mode(self):
        result = typecheck(
            copy_transducer(ALPHA), universal(), universal(),
            method="fast", audit="full",
        )
        assert result.ok and result.method == "fast-td"
        assert result.stats["audit"]["status"] == "certified"

    def test_lazy_type_error_witness_is_certified(self):
        result = typecheck(
            copy_transducer(ALPHA), universal(), leaves_all_a(),
            method="lazy", audit="witness",
        )
        assert not result.ok
        assert result.stats["audit"]["status"] == "certified"

    def test_degraded_fast_ok_is_unproven(self):
        result = typecheck(
            copy_transducer(ALPHA), universal(), universal(),
            method="fast", max_steps=1, fallback=True, audit="witness",
        )
        report = result.stats["audit"]
        assert report["status"] == "unproven"
        assert "fast-td" in report["reason"]
