"""Unit tests for the regular-expression AST and smart constructors."""

import pytest

from repro.errors import RegexError
from repro.regex import (
    EMPTY,
    EPSILON,
    Complement,
    Concat,
    Intersect,
    Star,
    Sym,
    Union,
    complement,
    concat,
    intersect,
    literal,
    optional,
    plus,
    star,
    sym,
    union,
    word,
)


class TestSmartConstructors:
    def test_concat_unit(self):
        assert concat(EPSILON, sym("a")) == sym("a")
        assert concat(sym("a"), EPSILON) == sym("a")

    def test_concat_zero(self):
        assert concat(sym("a"), EMPTY) == EMPTY
        assert concat(EMPTY, sym("a")) == EMPTY

    def test_union_removes_empty_and_duplicates(self):
        assert union(EMPTY, sym("a")) == sym("a")
        assert union(sym("a"), sym("a")) == sym("a")
        assert union() == EMPTY

    def test_star_simplifications(self):
        assert star(EMPTY) == EPSILON
        assert star(EPSILON) == EPSILON
        assert star(star(sym("a"))) == star(sym("a"))

    def test_plus(self):
        assert plus(EMPTY) == EMPTY
        assert isinstance(plus(sym("a")), Star)
        assert plus(sym("a")).plus

    def test_optional(self):
        assert optional(star(sym("a"))) == star(sym("a"))
        result = optional(sym("a"))
        assert result.nullable()

    def test_complement_involution(self):
        assert complement(complement(sym("a"))) == sym("a")

    def test_word_and_literal(self):
        assert word(["a", "b"]) == Concat(Sym("a"), Sym("b"))
        assert literal("ab") == word("ab")

    def test_empty_symbol_rejected(self):
        with pytest.raises(RegexError):
            Sym("")


class TestQueries:
    def test_nullable(self):
        assert EPSILON.nullable()
        assert not EMPTY.nullable()
        assert star(sym("a")).nullable()
        assert not plus(sym("a")).nullable()
        assert complement(sym("a")).nullable()  # epsilon not in L(a)
        assert not complement(EPSILON).nullable()

    def test_symbols(self):
        expr = concat(sym("a"), union(sym("b"), star(sym("c"))))
        assert expr.symbols() == {"a", "b", "c"}

    def test_is_plain_and_star_free(self):
        plain = concat(sym("a"), star(sym("b")))
        assert plain.is_plain()
        assert not plain.is_star_free()
        generalized = intersect(sym("a"), complement(sym("b")))
        assert not generalized.is_plain()
        assert generalized.is_star_free()

    def test_complement_depth(self):
        expr = complement(concat(sym("a"), complement(sym("b"))))
        assert expr.complement_depth() == 2
        assert sym("a").complement_depth() == 0

    def test_size(self):
        assert sym("a").size() == 1
        assert concat(sym("a"), sym("b")).size() == 3

    def test_operator_sugar(self):
        expr = sym("a") | sym("b")
        assert isinstance(expr, Union)
        expr = sym("a") & sym("b")
        assert isinstance(expr, Intersect)
        assert isinstance(~sym("a"), Complement)


class TestDisplay:
    def test_str_forms(self):
        from repro.regex import parse_regex

        for text in ["a.b*.c", "a.(b|(c.d))*.e", "~(a.b)&(a|b)*", "%", "@"]:
            expr = parse_regex(text)
            assert parse_regex(str(expr)) == expr
