"""Tests for the parser, NFA/DFA engines, and the boolean algebra."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import words
from repro.errors import RegexParseError
from repro.regex import (
    DFA,
    compile_regex,
    determinize,
    language_is_empty,
    nfa_from_regex,
    parse_regex,
)


def brute_force_language(expr_text: str, alphabet: tuple, max_len: int):
    """Language membership by brute force via the compiled DFA (used to
    cross-check constructions against each other)."""
    dfa = compile_regex(parse_regex(expr_text), alphabet)
    return {
        word
        for n in range(max_len + 1)
        for word in itertools.product(alphabet, repeat=n)
        if dfa.accepts(word)
    }


class TestParser:
    def test_precedence(self):
        # '.' binds tighter than '|'
        expr = parse_regex("a.b|c")
        assert str(expr) == "a.b|c"
        dfa = compile_regex(expr, {"a", "b", "c"})
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["c"])
        assert not dfa.accepts(["a", "c"])

    def test_postfix_operators(self):
        dfa = compile_regex(parse_regex("a?.b+"), {"a", "b"})
        assert dfa.accepts(["b"])
        assert dfa.accepts(["a", "b", "b"])
        assert not dfa.accepts(["a"])

    def test_quoted_symbols(self):
        expr = parse_regex("'-'*.a")
        assert expr.symbols() == {"-", "a"}

    def test_epsilon_and_empty(self):
        assert compile_regex(parse_regex("%"), {"a"}).accepts([])
        assert compile_regex(parse_regex("@"), {"a"}).is_empty()

    def test_errors(self):
        for bad in ["a.", "(a", "a)b", "'unterminated", "&a", "a||b"]:
            with pytest.raises(RegexParseError):
                parse_regex(bad)


class TestNFA:
    @given(words())
    def test_nfa_matches_dfa(self, word):
        expr = parse_regex("a.(b|(a.a))*.b?")
        nfa = nfa_from_regex(expr)
        dfa = determinize(nfa, {"a", "b"})
        assert nfa.accepts(word) == dfa.accepts(word)

    @given(words(max_size=5))
    def test_reversed_language(self, word):
        expr = parse_regex("a.b*.a|b.a")
        nfa = nfa_from_regex(expr)
        assert nfa.accepts(word) == nfa.reversed().accepts(list(reversed(word)))


class TestDFAAlgebra:
    ALPHA = ("a", "b")

    def test_complement(self):
        dfa = compile_regex(parse_regex("a.b"), self.ALPHA)
        comp = dfa.complemented()
        for n in range(4):
            for word in itertools.product(self.ALPHA, repeat=n):
                assert dfa.accepts(word) != comp.accepts(word)

    def test_intersection_union_difference(self):
        one = compile_regex(parse_regex("a.(a|b)*"), self.ALPHA)
        two = compile_regex(parse_regex("(a|b)*.b"), self.ALPHA)
        both = one.intersection(two)
        either = one.union(two)
        diff = one.difference(two)
        for n in range(5):
            for word in itertools.product(self.ALPHA, repeat=n):
                a, b = one.accepts(word), two.accepts(word)
                assert both.accepts(word) == (a and b)
                assert either.accepts(word) == (a or b)
                assert diff.accepts(word) == (a and not b)

    def test_inclusion_and_equivalence(self):
        star = compile_regex(parse_regex("(a|b)*"), self.ALPHA)
        some = compile_regex(parse_regex("a.b*"), self.ALPHA)
        assert star.includes(some)
        assert not some.includes(star)
        assert star.equivalent(star.complemented().complemented())

    def test_minimized_preserves_language(self):
        dfa = compile_regex(parse_regex("(a.b)*.a?"), self.ALPHA)
        small = dfa.minimized()
        assert small.n_states <= dfa.n_states
        for n in range(5):
            for word in itertools.product(self.ALPHA, repeat=n):
                assert dfa.accepts(word) == small.accepts(word)

    def test_shortest_accepted(self):
        dfa = compile_regex(parse_regex("a.a.b"), self.ALPHA)
        assert dfa.shortest_accepted() == ["a", "a", "b"]
        assert compile_regex(parse_regex("@"), self.ALPHA).shortest_accepted() \
            is None

    def test_accepted_words_ordered(self):
        dfa = compile_regex(parse_regex("a.b*"), self.ALPHA)
        found = list(dfa.accepted_words(3))
        assert found == [["a"], ["a", "b"], ["a", "b", "b"]]

    def test_reversed_dfa(self):
        dfa = compile_regex(parse_regex("a.b.b"), self.ALPHA)
        rev = dfa.reversed_dfa()
        assert rev.accepts(["b", "b", "a"])
        assert not rev.accepts(["a", "b", "b"])


class TestGeneralizedRegex:
    ALPHA = ("a", "b")

    def test_complement_operator(self):
        dfa = compile_regex(parse_regex("~(a.b)"), self.ALPHA)
        assert dfa.accepts([])
        assert dfa.accepts(["a"])
        assert not dfa.accepts(["a", "b"])

    def test_intersect_operator(self):
        lang = brute_force_language("(a|b)*.a & a.(a|b)*", self.ALPHA, 3)
        assert ("a",) in lang
        assert ("a", "b", "a") in lang
        assert ("b", "a") not in lang

    def test_concat_over_complement(self):
        # words whose first letter is not followed by 'b...b' — exercises
        # concatenation over generalized subexpressions (Theorem 4.8 shapes)
        dfa = compile_regex(parse_regex("a.~(b.b)"), self.ALPHA)
        assert dfa.accepts(["a"])
        assert dfa.accepts(["a", "b"])
        assert not dfa.accepts(["a", "b", "b"])

    def test_star_free_emptiness(self):
        assert language_is_empty(parse_regex("a & b"), self.ALPHA)
        assert not language_is_empty(parse_regex("~(a.b) & a.b | a"),
                                     self.ALPHA)

    def test_de_morgan(self):
        left = compile_regex(parse_regex("~(a.b | b.a)"), self.ALPHA)
        right = compile_regex(parse_regex("~(a.b) & ~(b.a)"), self.ALPHA)
        assert left.equivalent(right)
