"""Tests for XML parsing/serialization and DTD validation (Sections 2.2-2.3)."""

import pytest
from hypothesis import given

from conftest import utrees
from repro.errors import DTDError, XMLParseError
from repro.data import paper_dtd, paper_tree
from repro.trees import parse_utree, u
from repro.xmlio import (
    DTD,
    TEXT_LABEL,
    SpecializedDTD,
    parse_dtd,
    parse_dtd_xml,
    parse_xml,
    to_xml,
)
from repro.regex import parse_regex


class TestXMLParser:
    def test_paper_document(self):
        """Section 2.2's serialization of Figure 1."""
        document = "<a> <b></b> <b></b> <c><d></d></c> <e></e> </a>"
        assert parse_xml(document) == paper_tree()

    def test_self_closing(self):
        assert parse_xml("<a><b/><b/></a>") == u("a", u("b"), u("b"))

    def test_comments_and_pis_skipped(self):
        text = "<?xml version='1.0'?><!-- hi --><a><!-- inner --><b/></a>"
        assert parse_xml(text) == u("a", u("b"))

    def test_attributes_ignored(self):
        assert parse_xml('<a id="1" href=\'x\'><b/></a>') == u("a", u("b"))

    def test_mismatched_tags(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a><b></a></b>")

    def test_unterminated(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a><b/>")

    def test_text_rejected_in_core_model(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a>hello</a>")

    def test_text_kept_when_asked(self):
        tree = parse_xml("<a>hello<b/>world</a>", keep_text=True)
        assert tree == u("a", u(TEXT_LABEL), u("b"), u(TEXT_LABEL))

    @given(utrees())
    def test_serialize_parse_roundtrip(self, tree):
        assert parse_xml(to_xml(tree)) == tree
        assert parse_xml(to_xml(tree, indent=2)) == tree


class TestDTD:
    def test_paper_dtd_validates_figure1(self):
        assert paper_dtd().is_valid(paper_tree())

    def test_invalid_documents(self):
        dtd = paper_dtd()
        assert not dtd.is_valid(parse_utree("a(c)"))        # missing e
        assert not dtd.is_valid(parse_utree("b"))           # wrong root
        assert not dtd.is_valid(parse_utree("a(c(b), e)"))  # b under c

    def test_validation_errors_are_located(self):
        errors = paper_dtd().validation_errors(parse_utree("a(b, c(b), e)"))
        assert any(addr == (1,) for addr, _ in errors)

    def test_undeclared_element(self):
        errors = paper_dtd().validation_errors(parse_utree("a(z, c, e)"))
        assert any("undeclared" in message for _, message in errors)

    def test_parse_dtd_comments_and_epsilon(self):
        dtd = parse_dtd("r := x*  # root\nx :=\n\n# trailing comment")
        assert dtd.root == "r"
        assert dtd.is_valid(parse_utree("r(x, x)"))
        assert dtd.is_valid(parse_utree("r"))

    def test_parse_dtd_errors(self):
        with pytest.raises(DTDError):
            parse_dtd("")
        with pytest.raises(DTDError):
            parse_dtd("a = b")  # not :=
        with pytest.raises(DTDError):
            parse_dtd("a := b")  # b undeclared
        with pytest.raises(DTDError):
            parse_dtd("a := %\na := %")  # duplicate

    def test_content_models_must_be_plain(self):
        with pytest.raises(DTDError):
            DTD("a", {"a": parse_regex("~a")})

    def test_xml_dtd_syntax(self):
        dtd = parse_dtd_xml(
            "<!ELEMENT a (b*, c)> <!ELEMENT b EMPTY> <!ELEMENT c (#PCDATA)>"
        )
        assert dtd.root == "a"
        assert dtd.is_valid(parse_utree("a(b, b, c)"))
        assert not dtd.is_valid(parse_utree("a(c, b)"))

    def test_instances_are_valid_and_distinct(self):
        dtd = paper_dtd()
        found = list(dtd.instances(8))
        assert len(found) == len(set(found)) == 8
        assert all(dtd.is_valid(tree) for tree in found)


class TestSpecializedDTD:
    def test_paper_motivating_example(self):
        """{a(b(c), b(d))} needs decoupled types (Section 2.3)."""
        sdtd = SpecializedDTD(
            types={"A": "a", "B1": "b", "B2": "b", "C": "c", "D": "d"},
            content={
                "A": parse_regex("B1.B2"),
                "B1": parse_regex("C"),
                "B2": parse_regex("D"),
                "C": parse_regex("%"),
                "D": parse_regex("%"),
            },
            roots={"A"},
        )
        assert sdtd.is_valid(parse_utree("a(b(c), b(d))"))
        assert not sdtd.is_valid(parse_utree("a(b(d), b(c))"))
        assert not sdtd.is_valid(parse_utree("a(b(c), b(c))"))

    def test_from_dtd_agrees(self):
        dtd = paper_dtd()
        sdtd = SpecializedDTD.from_dtd(dtd)
        for document in dtd.instances(6):
            assert sdtd.is_valid(document)
        assert not sdtd.is_valid(parse_utree("a(c)"))

    def test_validation_against_construction(self):
        sdtd = SpecializedDTD.from_dtd(paper_dtd())
        for document in sdtd.instances(6):
            assert sdtd.is_valid(document)

    def test_bad_definitions(self):
        with pytest.raises(DTDError):
            SpecializedDTD(types={"A": "a"}, content={}, roots={"A"})
        with pytest.raises(DTDError):
            SpecializedDTD(
                types={"A": "a"},
                content={"A": parse_regex("B")},
                roots={"A"},
            )
