"""The paper's example machines, Section 3.2 (Examples 3.3-3.7, Fig. 2)."""

import pytest
from hypothesis import given, settings

from conftest import btrees
from repro.data.generators import full_binary_tree, right_spine
from repro.errors import PebbleMachineError
from repro.pebble import (
    Move,
    PebbleTransducer,
    RuleSet,
    add_preorder_next,
    copy_transducer,
    evaluate,
    exponential_transducer,
    rotation_transducer,
)
from repro.pebble.transducer import Emit0
from repro.trees import BTree, IndexedTree, RankedAlphabet, leaf, node

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


class TestExample33Copy:
    @given(btrees())
    def test_copy_is_identity(self, tree):
        machine = copy_transducer(ALPHA)
        assert evaluate(machine, tree) == tree

    def test_copy_shape(self):
        machine = copy_transducer(ALPHA)
        assert machine.k == 1
        assert machine.stats()["states"] == 3


class TestExample34Preorder:
    def _walker(self, alphabet, root_symbol):
        """A transducer that walks the whole tree in pre-order and counts
        visits by emitting a right-linear chain of f's."""
        rules = RuleSet()
        extra = add_preorder_next(
            rules, alphabet, {root_symbol}, "go", "emit", "end", tag=0
        )
        # at each visited node: emit one chain link, then keep walking
        from repro.pebble.transducer import Emit2

        rules.add(None, "emit", Emit2("f", "leafer", "go"))
        rules.add(None, "leafer", Emit0("a"))
        rules.add(None, "end", Emit0("a"))
        rules.add(None, "boot", Emit2("f", "leafer", "go"))
        return PebbleTransducer(
            input_alphabet=alphabet,
            output_alphabet=RankedAlphabet(leaves={"a"}, internals={"f"}),
            levels=[["go", "emit", "end", "boot", "leafer"] + extra],
            initial="boot",
            rules=rules,
        )

    @given(btrees(leaves=("a", "b"), internals=("g",)))
    @settings(max_examples=40)
    def test_visits_every_node_once(self, tree):
        # make the root symbol unique: wrap in an 'r' node
        alphabet = RankedAlphabet(leaves={"a", "b"}, internals={"g", "r"})
        wrapped = BTree("r", tree, BTree("a"))
        machine = self._walker(alphabet, "r")
        output = evaluate(machine, wrapped)
        assert output is not None
        # chain length == number of nodes (each visit emits one link)
        length = 0
        while not output.is_leaf:
            length += 1
            output = output.right
        assert length == wrapped.size()

    def test_preorder_order(self):
        """Drive the subroutine manually and compare with walk()."""
        alphabet = RankedAlphabet(leaves={"a", "b"}, internals={"g", "r"})
        tree = node("r", node("g", leaf("a"), leaf("b")), leaf("a"))
        rules = RuleSet()
        extra = add_preorder_next(
            rules, alphabet, {"r"}, "go", "done", "end", tag=0
        )
        machine = PebbleTransducer(
            input_alphabet=alphabet,
            output_alphabet=alphabet,
            levels=[["go", "done", "end"] + extra],
            initial="go",
            rules=rules,
        )
        from repro.pebble.stepping import guard_bits, move_successor

        indexed = IndexedTree(tree)
        visited = [0]
        config = ("go", (0,))
        for _ in range(200):
            state, positions = config
            symbol = indexed.label(positions[-1])
            actions = machine.actions_for(symbol, state, guard_bits(positions))
            applicable = [
                (action, move_successor(indexed, positions, action))
                for action in actions
            ]
            applicable = [
                (action, pos) for action, pos in applicable if pos is not None
            ]
            assert len(applicable) <= 1
            if not applicable:
                break
            action, new_positions = applicable[0]
            config = (action.target, new_positions)
            if action.target == "done":
                visited.append(new_positions[-1])
                config = ("go", new_positions)
            if action.target == "end":
                break
        assert visited == list(range(indexed.n))  # pre-order = id order


class TestExample36Exponential:
    def test_recursive_definition(self):
        """f(a(t1,t2)) = z(a(f t1, f t2), a(f t1, f t2)); f(a) = z(a,a)."""
        machine = exponential_transducer(ALPHA)
        assert evaluate(machine, leaf("a")) == node("z", leaf("a"), leaf("a"))
        tree = node("f", leaf("a"), leaf("b"))
        inner = node(
            "f",
            node("z", leaf("a"), leaf("a")),
            node("z", leaf("b"), leaf("b")),
        )
        assert evaluate(machine, tree) == node("z", inner, inner)

    def test_output_size_exponential(self):
        machine = exponential_transducer(ALPHA)
        sizes = []
        for depth in range(1, 6):
            tree = full_binary_tree(ALPHA, depth, "f", "a")
            sizes.append(evaluate(machine, tree).size())
        # each extra level roughly squares the subtree count: strictly
        # super-linear growth, past 2^depth.
        for depth, size in enumerate(sizes, start=1):
            assert size >= 2 ** (depth + 1)

    def test_marker_clash_rejected(self):
        with pytest.raises(PebbleMachineError):
            exponential_transducer(ALPHA, marker="f")


class TestExample37Rotation:
    ALPHA2 = RankedAlphabet(leaves={"s", "b", "c"}, internals={"r", "g"})

    def test_figure_2_smallest(self):
        machine = rotation_transducer(self.ALPHA2)
        assert evaluate(machine, node("r", leaf("s"), leaf("b"))) == \
            node("r2", leaf("m"), node("r", leaf("b"), leaf("n")))

    def test_figure_2_nested(self):
        machine = rotation_transducer(self.ALPHA2)
        tree = node("r", node("g", leaf("c"), leaf("s")), leaf("b"))
        assert evaluate(machine, tree) == node(
            "r2",
            leaf("m"),
            node("g", node("r", leaf("b"), leaf("n")), leaf("c")),
        )

    def test_output_size_is_input_size_plus_two(self):
        """Rotation adds exactly the two fresh nodes m and n."""
        machine = rotation_transducer(self.ALPHA2)
        tree = node(
            "r",
            node("g", node("g", leaf("s"), leaf("c")), leaf("b")),
            leaf("c"),
        )
        output = evaluate(machine, tree)
        assert output is not None
        assert output.size() == tree.size() + 2

    def test_string_reversal(self):
        """The paper's remark: a 1-pebble transducer reverses a string
        encoded as a right-linear binary tree."""
        alphabet = RankedAlphabet(leaves={"s", "x"}, internals={"r", "c1",
                                                                "c2"})
        machine = rotation_transducer(alphabet)
        # encode the string r c1 c2 as r(x, c1(x, c2(x, s)))
        tree = node("r", leaf("x"),
                    node("c1", leaf("x"), node("c2", leaf("x"), leaf("s"))))
        output = evaluate(machine, tree)
        # read the labels along the left spine of the rotated tree
        spine = []
        current = output.right  # under the new root
        while current is not None and not current.is_leaf:
            spine.append(current.label)
            current = current.left
        assert spine == ["c2", "c1", "r"]  # reversed

    def test_no_pivot_diverges(self):
        machine = rotation_transducer(self.ALPHA2)
        assert evaluate(machine, node("r", leaf("b"), leaf("c"))) is None

    def test_pivot_must_be_leaf(self):
        with pytest.raises(PebbleMachineError):
            rotation_transducer(self.ALPHA2, pivot="g")
