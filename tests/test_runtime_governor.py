"""The resource governor and the exact→bounded degradation policy.

Covers the :mod:`repro.runtime` primitives (budgets, deadlines,
cancellation, phases, the ambient installation), the governed pipeline
(exact typechecking under tiny budgets raises
:class:`~repro.errors.ResourceExhausted` with phase metadata — the
non-elementary blow-up of Theorem 4.8 made survivable), and the
``fallback=True`` degradation of :func:`repro.typecheck.typecheck`.
"""

import time

import pytest

from repro.automata import BottomUpTA
from repro.errors import ResourceExhausted
from repro.pebble import copy_transducer, evaluate
from repro.pebble.builders import exponential_transducer
from repro.runtime import (
    Budget,
    Deadline,
    NULL_GOVERNOR,
    ResourceGovernor,
    current_governor,
    governed,
    make_governor,
)
from repro.trees import BTree, RankedAlphabet
from repro.typecheck import typecheck
from repro.typecheck.engine import DEGRADED_METHOD, as_automaton

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


@pytest.fixture(autouse=True)
def _uncached():
    """These tests pin the budget-exhaustion behaviour of the *uncached*
    pipeline; a warm process-wide memo table would absorb exactly the work
    the tiny budgets here are sized to interrupt."""
    from repro.runtime import cache_disabled

    with cache_disabled():
        yield


def leaves_all_a(alphabet=ALPHA) -> BottomUpTA:
    return BottomUpTA(
        alphabet=alphabet,
        states={"ok"},
        leaf_rules={"a": {"ok"}},
        rules={(s, "ok", "ok"): {"ok"} for s in sorted(alphabet.internals)},
        accepting={"ok"},
    )


def left_chains() -> BottomUpTA:
    """Infinitely many trees, but only ~1 new one per enumeration round."""
    alphabet = RankedAlphabet(leaves={"a"}, internals={"f"})
    return BottomUpTA(
        alphabet=alphabet,
        states={"leaf", "chain"},
        leaf_rules={"a": {"leaf"}},
        rules={
            ("f", "leaf", "leaf"): {"chain"},
            ("f", "chain", "leaf"): {"chain"},
        },
        accepting={"chain"},
    )


class TestBudgetAndDeadline:
    def test_budget_validates(self):
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
        with pytest.raises(ValueError):
            Budget(max_states=-5)

    def test_budget_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_steps=10).unlimited

    def test_deadline_after(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0
        assert deadline.seconds == 60.0

    def test_deadline_expired(self):
        deadline = Deadline(time.monotonic() - 1.0)
        assert deadline.expired()
        assert deadline.remaining() < 0


class TestResourceGovernor:
    def test_step_budget(self):
        governor = ResourceGovernor(budget=Budget(max_steps=3))
        governor.tick()
        governor.tick(2)
        with pytest.raises(ResourceExhausted) as info:
            governor.tick()
        assert info.value.reason == "steps"
        assert info.value.steps == 4
        assert info.value.limit == 3

    def test_state_budget(self):
        governor = ResourceGovernor(budget=Budget(max_states=10))
        governor.add_states(10)
        with pytest.raises(ResourceExhausted) as info:
            governor.add_states()
        assert info.value.reason == "states"
        assert info.value.states == 11

    def test_deadline_is_checked_amortized(self):
        governor = ResourceGovernor(
            deadline=Deadline(time.monotonic() - 1.0), check_interval=4
        )
        governor.tick(3)  # below the check interval: no clock read
        with pytest.raises(ResourceExhausted) as info:
            governor.tick()
        assert info.value.reason == "deadline"

    def test_cancel(self):
        governor = ResourceGovernor()
        governor.cancel()
        assert governor.cancelled
        with pytest.raises(ResourceExhausted) as info:
            governor.check()
        assert info.value.reason == "cancelled"

    def test_phase_stack_and_metadata(self):
        governor = ResourceGovernor(budget=Budget(max_steps=0))
        assert governor.current_phase == ""
        with governor.phase("outer"):
            assert governor.current_phase == "outer"
            with governor.phase("inner"):
                with pytest.raises(ResourceExhausted) as info:
                    governor.tick()
                assert info.value.phase == "inner"
            assert governor.current_phase == "outer"
        assert governor.current_phase == ""
        progress = info.value.progress()
        assert progress["reason"] == "steps"
        assert progress["phase"] == "inner"

    def test_stats(self):
        governor = ResourceGovernor()
        governor.tick(7)
        governor.add_states(2)
        stats = governor.stats()
        assert stats["steps"] == 7
        assert stats["states"] == 2
        assert stats["elapsed"] >= 0


class TestAmbientGovernor:
    def test_default_is_null(self):
        governor = current_governor()
        assert governor is NULL_GOVERNOR
        assert not governor.active
        governor.tick(10 ** 9)  # no-ops, never raises
        governor.add_states(10 ** 9)
        governor.check()

    def test_governed_installs_and_restores(self):
        mine = ResourceGovernor()
        with governed(mine):
            assert current_governor() is mine
            other = ResourceGovernor()
            with governed(other):
                assert current_governor() is other
            assert current_governor() is mine
        assert current_governor() is NULL_GOVERNOR

    def test_make_governor(self):
        assert make_governor() is None
        governor = make_governor(timeout=5.0, max_steps=10, max_states=20)
        assert governor.deadline is not None
        assert governor.budget.max_steps == 10
        assert governor.budget.max_states == 20


class TestGovernedPipeline:
    def test_exact_typecheck_exhausts_steps_with_phase(self):
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        with pytest.raises(ResourceExhausted) as info:
            typecheck(machine, tau, tau, method="exact", max_steps=10)
        assert info.value.reason == "steps"
        assert info.value.phase != ""
        assert info.value.steps > 10

    def test_exponential_instance_exhausts_with_phase_metadata(self):
        # Example 3.6: the output doubles per input level; the exact
        # pipeline on this machine hits any tiny budget immediately.
        machine = exponential_transducer(ALPHA)
        tau1 = leaves_all_a()
        tau2 = leaves_all_a(
            RankedAlphabet(leaves={"a", "b"}, internals={"f", "g", "z"})
        )
        with pytest.raises(ResourceExhausted) as info:
            typecheck(machine, tau1, tau2, method="exact", max_steps=25)
        assert info.value.reason == "steps"
        # the budget must die inside a named pipeline stage
        assert info.value.phase in {
            "exact",
            "complement-output-type",
            "transducer-product",
            "pebble-to-regular",
            "walking-summary",
            "intersect-input-type",
            "witness",
        } or info.value.phase.startswith("regularize:level")

    def test_determinization_respects_state_budget(self):
        tau = leaves_all_a()
        governor = ResourceGovernor(budget=Budget(max_states=1))
        with governed(governor):
            with pytest.raises(ResourceExhausted) as info:
                as_automaton(tau).complemented()
        assert info.value.reason == "states"

    def test_evaluate_honours_ambient_governor(self):
        machine = copy_transducer(ALPHA)
        tree = BTree("f", BTree("a"), BTree("a"))
        governor = ResourceGovernor(budget=Budget(max_steps=2))
        with governed(governor):
            with pytest.raises(ResourceExhausted) as info:
                evaluate(machine, tree)
        assert info.value.phase == "evaluate"

    def test_no_budget_means_no_behaviour_change(self):
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        plain = typecheck(machine, tau, tau, method="exact")
        assert plain.ok
        assert plain.method == "exact"
        assert "budget" not in plain.stats


class TestDegradation:
    def test_fallback_off_raises(self):
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        with pytest.raises(ResourceExhausted):
            typecheck(
                machine, tau, tau, method="exact",
                max_steps=10, fallback=False,
            )

    def test_fallback_finds_known_counterexample(self):
        machine = copy_transducer(ALPHA)
        tau1 = as_automaton(leaves_all_a()).complemented()  # some b leaf
        tau2 = leaves_all_a()
        result = typecheck(
            machine, tau1, tau2, method="exact",
            max_steps=10, fallback=True,
        )
        assert result.method == DEGRADED_METHOD
        assert not result.ok
        assert tau1.accepts(result.counterexample_input)
        assert not tau2.accepts(result.counterexample_output)
        assert result.stats["degraded"] is True
        exhausted = result.stats["exact_exhausted"]
        assert exhausted["reason"] == "steps"
        assert exhausted["phase"] != ""

    def test_fallback_ok_carries_caveat(self):
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        result = typecheck(
            machine, tau, tau, method="exact",
            max_steps=10, fallback=True,
        )
        assert result.method == DEGRADED_METHOD
        assert result.ok
        assert "caveat" in result.stats
        assert result.stats["inputs_checked"] > 0

    def test_deadline_degradation(self):
        # an already-started governor whose deadline lapses mid-pipeline
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        governor = ResourceGovernor(
            deadline=Deadline.after(0.0005), check_interval=1
        )
        result = typecheck(
            machine, tau, tau, method="exact",
            fallback=True, governor=governor,
        )
        assert result.method == DEGRADED_METHOD
        assert result.stats["exact_exhausted"]["reason"] == "deadline"

    def test_nonelementary_wall_degrades_under_deadline(self):
        # Theorem 4.8 made survivable: the k=2 star-free decider blows up
        # the exact pipeline (bench_e11 used to kill it from a separate
        # process); under a deadline it degrades to the bounded falsifier,
        # which still finds the genuine counterexample (the language of
        # ~(a.~(a.b)) is non-empty, so the machine does NOT typecheck
        # against {b}).
        from repro.pebble import (
            singleton_b_type,
            starfree_to_transducer,
            string_alphabet,
            string_encodings_type,
        )
        from repro.regex import parse_regex

        alpha = string_alphabet({"a", "b"})
        machine = starfree_to_transducer(parse_regex("~(a.~(a.b))"), alpha)
        started = time.perf_counter()
        result = typecheck(
            machine, string_encodings_type(alpha), singleton_b_type(),
            method="exact", timeout=0.5, fallback=True, max_inputs=20,
        )
        elapsed = time.perf_counter() - started
        assert result.method == DEGRADED_METHOD
        assert not result.ok
        assert result.stats["exact_exhausted"]["reason"] == "deadline"
        assert elapsed < 30  # ungoverned, this runs essentially forever

    def test_timeout_keyword_degrades_and_finishes_quickly(self):
        machine = exponential_transducer(ALPHA)
        tau1 = leaves_all_a()
        tau2 = leaves_all_a(
            RankedAlphabet(leaves={"a", "b"}, internals={"f", "g", "z"})
        )
        started = time.perf_counter()
        # 0.2 ms: far below the cold pipeline's wall time (~1 ms), so
        # the deadline reliably lapses mid-pipeline rather than racing
        # completion.
        result = typecheck(
            machine, tau1, tau2, method="exact",
            timeout=0.0002, fallback=True,
        )
        elapsed = time.perf_counter() - started
        assert result.method == DEGRADED_METHOD
        assert result.stats["exact_exhausted"]["reason"] == "deadline"
        assert elapsed < 30  # a loose sanity bound; typical runs are ~ms


class TestGenerateReport:
    def test_truncated_enumeration_is_flagged(self):
        report: dict = {}
        emitted = list(leaves_all_a().generate(10 ** 6, max_rounds=2,
                                               report=report))
        assert emitted
        assert report["emitted"] == len(emitted)
        assert report["rounds"] <= 2
        assert report["exhausted"] is True

    def test_complete_enumeration_is_not_flagged(self):
        single = BottomUpTA(
            alphabet=RankedAlphabet(leaves={"a"}, internals={"f"}),
            states={"ok"},
            leaf_rules={"a": {"ok"}},
            rules={},
            accepting={"ok"},
        )
        report: dict = {}
        emitted = list(single.generate(10, report=report))
        assert emitted == [BTree("a")]
        assert report["emitted"] == 1
        assert report["exhausted"] is False

    def test_limit_reached_is_not_exhaustion(self):
        report: dict = {}
        emitted = list(leaves_all_a().generate(3, report=report))
        assert len(emitted) == 3
        assert report["exhausted"] is False


class TestBoundedEnumerationStats:
    def test_exhausted_enumeration_surfaces_in_stats(self):
        # left_chains has one new accepted tree per round, so the default
        # 12 rounds cannot satisfy 50 inputs: the truncation must be
        # reported, not silently ignored (the pre-fix behaviour).
        chain_alpha = RankedAlphabet(leaves={"a"}, internals={"f"})
        machine = copy_transducer(chain_alpha)
        tau = left_chains()
        result = typecheck(machine, tau, tau, method="bounded",
                           max_inputs=50)
        assert result.ok
        assert result.stats["inputs_requested"] == 50
        assert 0 < result.stats["inputs_checked"] < 50
        assert result.stats["enumeration_exhausted"] is True

    def test_satisfied_enumeration_reports_complete(self):
        machine = copy_transducer(ALPHA)
        tau = leaves_all_a()
        result = typecheck(machine, tau, tau, method="bounded",
                           max_inputs=5)
        assert result.ok
        assert result.stats["inputs_checked"] == 5
        assert result.stats["enumeration_exhausted"] is False
