"""Unit tests for ranked alphabets (Section 2.1)."""

import pytest

from repro.errors import AlphabetError
from repro.trees import CONS, NIL, RankedAlphabet, encoded_alphabet


class TestRankedAlphabet:
    def test_symbols_union(self):
        alphabet = RankedAlphabet(leaves={"a"}, internals={"f"})
        assert alphabet.symbols == {"a", "f"}

    def test_contains(self):
        alphabet = RankedAlphabet(leaves={"a"}, internals={"f"})
        assert "a" in alphabet
        assert "f" in alphabet
        assert "z" not in alphabet

    def test_rank_of_leaf_and_internal(self):
        alphabet = RankedAlphabet(leaves={"a"}, internals={"f"})
        assert alphabet.rank_of("a") == {0}
        assert alphabet.rank_of("f") == {2}

    def test_symbol_may_have_both_ranks(self):
        alphabet = RankedAlphabet(leaves={"s"}, internals={"s"})
        assert alphabet.rank_of("s") == {0, 2}

    def test_rank_of_unknown_raises(self):
        alphabet = RankedAlphabet(leaves={"a"}, internals=set())
        with pytest.raises(AlphabetError):
            alphabet.rank_of("z")

    def test_needs_a_leaf(self):
        with pytest.raises(AlphabetError):
            RankedAlphabet(leaves=set(), internals={"f"})

    def test_check_leaf_rejects_internal_only(self):
        alphabet = RankedAlphabet(leaves={"a"}, internals={"f"})
        with pytest.raises(AlphabetError):
            alphabet.check_leaf("f")
        alphabet.check_leaf("a")

    def test_check_internal_rejects_leaf_only(self):
        alphabet = RankedAlphabet(leaves={"a"}, internals={"f"})
        with pytest.raises(AlphabetError):
            alphabet.check_internal("a")
        alphabet.check_internal("f")

    def test_union(self):
        one = RankedAlphabet(leaves={"a"}, internals={"f"})
        two = RankedAlphabet(leaves={"b"}, internals={"g"})
        both = one.union(two)
        assert both.leaves == {"a", "b"}
        assert both.internals == {"f", "g"}

    def test_iteration_is_sorted(self):
        alphabet = RankedAlphabet(leaves={"b", "a"}, internals={"f"})
        assert list(alphabet) == ["a", "b", "f"]


class TestEncodedAlphabet:
    def test_structure(self):
        encoded = encoded_alphabet({"a", "b"})
        assert encoded.leaves == {NIL}
        assert encoded.internals == {"a", "b", CONS}

    def test_reserved_symbols_rejected(self):
        with pytest.raises(AlphabetError):
            encoded_alphabet({"a", CONS})
        with pytest.raises(AlphabetError):
            encoded_alphabet({NIL})
