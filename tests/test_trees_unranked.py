"""Unit tests for unranked trees (Section 2.1)."""

import pytest
from hypothesis import given

from conftest import utrees
from repro.errors import TreeError
from repro.trees import UTree, parse_utree, u


class TestConstruction:
    def test_leaf(self):
        tree = u("a")
        assert tree.is_leaf
        assert tree.size() == 1
        assert tree.height() == 0

    def test_nested(self):
        tree = u("a", u("b"), u("c", u("d")))
        assert tree.size() == 4
        assert tree.height() == 2
        assert not tree.is_leaf

    def test_label_must_be_nonempty(self):
        with pytest.raises(TreeError):
            UTree("")

    def test_children_must_be_trees(self):
        with pytest.raises(TreeError):
            UTree("a", ["b"])  # type: ignore[list-item]

    def test_equality_is_structural(self):
        assert u("a", u("b")) == u("a", u("b"))
        assert u("a", u("b")) != u("a", u("c"))

    def test_labels(self):
        assert u("a", u("b"), u("b", u("c"))).labels() == {"a", "b", "c"}


class TestAddressing:
    def test_walk_is_preorder(self):
        tree = u("a", u("b", u("c")), u("d"))
        addresses = [addr for _, addr in tree.walk()]
        assert addresses == [(), (0,), (0, 0), (1,)]

    def test_subtree(self):
        tree = u("a", u("b", u("c")), u("d"))
        assert tree.subtree((0, 0)).label == "c"
        assert tree.subtree(()) is tree

    def test_subtree_bad_address(self):
        with pytest.raises(TreeError):
            u("a").subtree((0,))

    def test_replace(self):
        tree = u("a", u("b"), u("c"))
        replaced = tree.replace((1,), u("z", u("w")))
        assert replaced == u("a", u("b"), u("z", u("w")))
        assert tree == u("a", u("b"), u("c"))  # original untouched

    def test_replace_root(self):
        assert u("a").replace((), u("b")) == u("b")


class TestParsing:
    def test_roundtrip_simple(self):
        text = "a(b, b, c(d), e)"
        assert str(parse_utree(text)) == "a(b, b, c(d), e)"

    def test_empty_parens(self):
        assert parse_utree("a()") == u("a")

    def test_trailing_garbage(self):
        with pytest.raises(TreeError):
            parse_utree("a(b))")

    def test_missing_label(self):
        with pytest.raises(TreeError):
            parse_utree("(b)")

    @given(utrees())
    def test_str_parse_roundtrip(self, tree):
        assert parse_utree(str(tree)) == tree

    @given(utrees())
    def test_walk_count_matches_size(self, tree):
        assert sum(1 for _ in tree.walk()) == tree.size()

    @given(utrees())
    def test_every_address_resolves(self, tree):
        for node, address in tree.walk():
            assert tree.subtree(address) == node
