"""Path expressions and the translate() semantics (Section 2.1).

The flagship property here is the paper's equation::

    eval(translate(r), encode(t)) = {encode-address of x | x in eval(r, t)}
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import utrees
from repro.errors import RegexError
from repro.regex import (
    eval_regex,
    eval_regex_binary,
    eval_word,
    parse_regex,
    translate,
)
from repro.trees import encode, encoded_address, parse_utree

PATH_EXPRESSIONS = [
    "a",
    "a.c",
    "a.c.d",
    "a.b",
    "a.(b|c)",
    "a.(b|(c.d))*.e",
    "a.c*.d",
    "%",
    "a*",
]


class TestWordSemantics:
    def test_epsilon_selects_root(self):
        tree = parse_utree("a(b)")
        assert eval_word([], tree) == {()}

    def test_single_symbol(self):
        tree = parse_utree("a(b)")
        assert eval_word(["a"], tree) == {()}
        assert eval_word(["b"], tree) == set()

    def test_paper_style_path(self):
        tree = parse_utree("a(b, b, c(d), e)")
        assert eval_word(["a", "c", "d"], tree) == {(2, 0)}
        assert eval_word(["a", "b"], tree) == {(0,), (1,)}


class TestRegexSemantics:
    def test_matches_word_semantics(self):
        tree = parse_utree("a(b(c), b(d), c(d))")
        expr = parse_regex("a.b.(c|d)")
        expected = eval_word(["a", "b", "c"], tree) | eval_word(
            ["a", "b", "d"], tree
        )
        assert eval_regex(expr, tree) == expected

    @given(utrees(), st.sampled_from(PATH_EXPRESSIONS))
    def test_regex_is_union_of_words(self, tree, text):
        """eval(r, t) = union of eval(w, t) over words w in lang(r)."""
        from repro.regex import compile_regex

        expr = parse_regex(text)
        dfa = compile_regex(expr, {"a", "b", "c", "d", "e"})
        height_bound = tree.height() + 1
        expected = set()
        for word in dfa.accepted_words(height_bound):
            expected |= eval_word(word, tree)
        assert eval_regex(expr, tree) == expected


class TestTranslate:
    def test_paper_examples_language(self):
        """The displayed translations of Section 2.1 denote the same
        word language as ours (ours adds a harmless leading (-)*)."""
        from repro.regex import compile_regex

        alphabet = {"a", "b", "c", "d", "e", "-"}
        ours = compile_regex(translate(parse_regex("a.c.d")), alphabet)
        paper = compile_regex(
            parse_regex("'-'*.a.'-'*.c.'-'*.d"), alphabet
        )
        assert ours.equivalent(paper)
        ours2 = compile_regex(
            translate(parse_regex("a.(b|(c.d))*.e")), alphabet
        )
        paper2 = compile_regex(
            parse_regex("'-'*.a.'-'*.(b.'-'*|(c.'-'*.d.'-'*))*.e"), alphabet
        )
        assert ours2.equivalent(paper2)

    @given(utrees(labels=("a", "b", "c", "d", "e")),
           st.sampled_from(PATH_EXPRESSIONS))
    def test_translate_equation(self, tree, text):
        """eval(translate(r), encode(t)) == encode(eval(r, t))."""
        expr = parse_regex(text)
        encoded = encode(tree)
        got = eval_regex_binary(translate(expr), encoded)
        want = {
            encoded_address(tree, address)
            for address in eval_regex(expr, tree)
        }
        assert got == want

    def test_rejects_generalized(self):
        with pytest.raises(RegexError):
            translate(parse_regex("~a"))

    def test_rejects_cons_symbol(self):
        with pytest.raises(RegexError):
            translate(parse_regex("'-'"))
