"""Regression properties for the memoized automata algebra.

These pin the invariants the memo table's correctness argument leans
on: minimization is idempotent (so a cached minimal automaton is a
fixed point), ``determinized(keep_subsets=True)`` is language- and
structure-preserving (its subset states are what ``to_regular``
correlates against), and structural fingerprints are stable across
renamings of equivalent automata (so isomorphic inputs share entries).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import btrees
from repro.automata import BottomUpTA
from repro.runtime import fingerprint
from repro.trees import RankedAlphabet

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def _random_automaton(seed: int) -> BottomUpTA:
    """A reproducible random bottom-up automaton over ALPHA."""
    rng = random.Random(seed)
    n_states = rng.randint(1, 3)
    states = [f"s{i}" for i in range(n_states)]
    leaf_rules = {
        symbol: {s for s in states if rng.random() < 0.6}
        for symbol in sorted(ALPHA.leaves)
    }
    rules = {}
    for symbol in sorted(ALPHA.internals):
        for left in states:
            for right in states:
                targets = {s for s in states if rng.random() < 0.35}
                if targets:
                    rules[(symbol, left, right)] = targets
    accepting = {s for s in states if rng.random() < 0.5} or {states[0]}
    return BottomUpTA(ALPHA, states, leaf_rules, rules, accepting)


AUTOMATA = st.integers(min_value=0, max_value=60).map(_random_automaton)


def _relabelled(automaton: BottomUpTA, tag: str) -> BottomUpTA:
    """The same automaton with every state wrapped in a fresh name."""
    def rename(state):
        return (tag, state)

    return BottomUpTA(
        alphabet=automaton.alphabet,
        states={rename(q) for q in automaton.states},
        leaf_rules={
            symbol: {rename(q) for q in targets}
            for symbol, targets in automaton.leaf_rules.items()
        },
        rules={
            (symbol, rename(left), rename(right)): {
                rename(q) for q in targets
            }
            for (symbol, left, right), targets in automaton.rules.items()
        },
        accepting={rename(q) for q in automaton.accepting},
    )


class TestMinimizationIdempotent:
    @given(automaton=AUTOMATA)
    @settings(max_examples=40, deadline=None)
    def test_minimized_is_a_fixed_point(self, automaton):
        minimal = automaton.minimized()
        again = minimal.minimized()
        assert len(again.states) == len(minimal.states)
        assert again.n_rules() == minimal.n_rules()
        assert again.equivalent(minimal)
        # stronger than equivalence: the canonical fingerprint agrees,
        # i.e. re-minimizing yields a structurally isomorphic automaton.
        assert fingerprint(again) == fingerprint(minimal)


class TestDeterminizeKeepSubsets:
    @given(automaton=AUTOMATA, tree=btrees(max_leaves=4))
    @settings(max_examples=40, deadline=None)
    def test_preserves_acceptance(self, automaton, tree):
        det = automaton.determinized(keep_subsets=True)
        assert det.accepts(tree) == automaton.accepts(tree)

    @given(automaton=AUTOMATA)
    @settings(max_examples=25, deadline=None)
    def test_states_are_subsets_of_the_input(self, automaton):
        det = automaton.determinized(keep_subsets=True)
        original = frozenset(automaton.states)
        assert all(isinstance(state, frozenset) for state in det.states)
        assert all(state <= original for state in det.states)

    def test_subset_state_printed_form_is_pinned(self):
        """Subset states render their members in the input automaton's
        intern-table order — not frozenset iteration order, which
        follows the per-process hash seed.  The printed form feeds
        ``stable_repr`` (hence memo keys), so it is pinned here."""
        ta = BottomUpTA(
            alphabet=ALPHA,
            states={"s1", "s0", "s2"},
            leaf_rules={"a": {"s1", "s0"}, "b": {"s2"}},
            rules={("f", "s0", "s2"): {"s1", "s2"}},
            accepting={"s1"},
        )
        det = ta.determinized(keep_subsets=True)
        assert sorted(map(repr, det.states)) == [
            "{'s0', 's1'}",
            "{'s1', 's2'}",
            "{'s2'}",
            "{}",
        ]
        # and the rendering ignores construction order of the automaton
        # (the intern table is discovery-ordered, not insertion-ordered)
        twin = BottomUpTA(
            alphabet=ta.alphabet,
            states={"s2", "s1", "s0"},
            leaf_rules={"b": {"s2"}, "a": {"s0", "s1"}},
            rules={("f", "s0", "s2"): {"s2", "s1"}},
            accepting={"s1"},
        )
        assert sorted(map(repr, twin.determinized(keep_subsets=True).states)) \
            == sorted(map(repr, det.states))


class TestFingerprintStability:
    @given(automaton=AUTOMATA)
    @settings(max_examples=40, deadline=None)
    def test_renaming_is_invisible(self, automaton):
        """Equivalent deterministic automata fingerprint identically,
        whatever their states are called."""
        minimal = automaton.minimized()
        assert fingerprint(minimal.renamed()) == fingerprint(minimal)
        assert fingerprint(_relabelled(minimal, "x")) == fingerprint(minimal)

    @given(automaton=AUTOMATA)
    @settings(max_examples=30, deadline=None)
    def test_equivalent_constructions_converge(self, automaton):
        """Two different routes to the same minimal automaton agree."""
        direct = automaton.minimized()
        via_det = automaton.determinized().minimized()
        assert fingerprint(direct) == fingerprint(via_det)

    def test_different_languages_differ(self):
        tau = BottomUpTA(
            alphabet=ALPHA,
            states={"ok"},
            leaf_rules={"a": {"ok"}},
            rules={(s, "ok", "ok"): {"ok"} for s in ("f", "g")},
            accepting={"ok"},
        )
        assert fingerprint(tau.minimized()) \
            != fingerprint(tau.complemented().minimized())

    def test_exact_fingerprint_sees_state_names(self):
        """The ``exact`` variant (used for keep_subsets results) must
        distinguish renamed twins that the canonical one merges."""
        automaton = _random_automaton(7).minimized()
        twin = _relabelled(automaton, "y")
        assert fingerprint(automaton) == fingerprint(twin)
        assert fingerprint(automaton, exact=True) \
            != fingerprint(twin, exact=True)


class TestGoldenFingerprints:
    """Pinned digests: the renaming-invariant fingerprints are the memo
    keys of every warm cache on disk, so their byte format is frozen.
    If an intentional format change makes these fail, bump the digests
    *and* accept that every persisted cache segment is invalidated."""

    def _tau(self) -> BottomUpTA:
        return BottomUpTA(
            alphabet=ALPHA,
            states={"ok"},
            leaf_rules={"a": {"ok"}},
            rules={(s, "ok", "ok"): {"ok"} for s in ("f", "g")},
            accepting={"ok"},
        )

    def test_tree_automata_digests(self):
        tau = self._tau()
        assert fingerprint(tau) == "ta:55ae0c55bae9e3de76d37e963ca03b6a"
        assert fingerprint(tau.minimized()) \
            == "ta:00d0db502e24fcd642d34174a6e7a21d"
        assert fingerprint(tau.complemented().minimized()) \
            == "ta:6f4e4f110b648211b86fc83e54d4636e"

    def test_regex_and_dfa_digests(self):
        from repro.regex import compile_regex, concat, star, sym, union

        expr = concat(star(union(sym("a"), sym("b"))), sym("a"))
        assert fingerprint(expr) == "re:98d02a19242b98413d2303e22fbdb518"
        dfa = compile_regex(expr, alphabet={"a", "b"})
        assert fingerprint(dfa) == "dfa:02863bd184bf2354e55412fbc85a88bd"

    def test_pebble_pipeline_digests(self):
        from repro.lang import Apply, Out, Stylesheet, Template
        from repro.lang import xslt_to_transducer
        from repro.pebble import transducer_times_automaton
        from repro.typecheck.engine import as_automaton, bu_to_td
        from repro.xmlio import parse_dtd

        sheet = Stylesheet([
            Template("doc", [Out("D", [Apply()])]),
            Template("sec", [Out("S", [Apply()])]),
            Template("par", [Out("P")]),
        ])
        machine = xslt_to_transducer(
            sheet, tags={"doc", "sec", "par"}, root_tag="doc"
        )
        assert fingerprint(machine) \
            == "pt:698c507d448579e3d920059148f1242e"
        tau2 = parse_dtd("D := S*\nS := P*\nP :=")
        not_tau2 = bu_to_td(
            as_automaton(tau2, machine.output_alphabet)
            .complemented().trimmed()
        )
        assert fingerprint(not_tau2) \
            == "tda:aa18570aa2cc80dcf27b8eaed56b31ba"
        product = transducer_times_automaton(machine, not_tau2)
        assert fingerprint(product) \
            == "pa:a7f19d5ef8758d49f98993d265469efa"


class TestBitsetReferenceFingerprints:
    """The bitset core and the frozenset oracle must produce results
    with *identical* fingerprints — that is what lets a warm cache
    written under one representation be read under the other."""

    @given(automaton=AUTOMATA)
    @settings(max_examples=25, deadline=None)
    def test_op_results_fingerprint_identically(self, automaton):
        from repro.automata.bitset import reference_algebra
        from repro.runtime import clear_cache

        ops = [
            lambda a: a.determinized(),
            lambda a: a.minimized(),
            lambda a: a.determinized().complemented(),
            lambda a: a.trimmed(),
        ]
        for op in ops:
            clear_cache()
            with reference_algebra(False):
                bit = fingerprint(op(automaton))
            clear_cache()
            with reference_algebra(True):
                ora = fingerprint(op(automaton))
            clear_cache()
            assert bit == ora
