"""Regression properties for the memoized automata algebra.

These pin the invariants the memo table's correctness argument leans
on: minimization is idempotent (so a cached minimal automaton is a
fixed point), ``determinized(keep_subsets=True)`` is language- and
structure-preserving (its subset states are what ``to_regular``
correlates against), and structural fingerprints are stable across
renamings of equivalent automata (so isomorphic inputs share entries).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import btrees
from repro.automata import BottomUpTA
from repro.runtime import fingerprint
from repro.trees import RankedAlphabet

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


def _random_automaton(seed: int) -> BottomUpTA:
    """A reproducible random bottom-up automaton over ALPHA."""
    rng = random.Random(seed)
    n_states = rng.randint(1, 3)
    states = [f"s{i}" for i in range(n_states)]
    leaf_rules = {
        symbol: {s for s in states if rng.random() < 0.6}
        for symbol in sorted(ALPHA.leaves)
    }
    rules = {}
    for symbol in sorted(ALPHA.internals):
        for left in states:
            for right in states:
                targets = {s for s in states if rng.random() < 0.35}
                if targets:
                    rules[(symbol, left, right)] = targets
    accepting = {s for s in states if rng.random() < 0.5} or {states[0]}
    return BottomUpTA(ALPHA, states, leaf_rules, rules, accepting)


AUTOMATA = st.integers(min_value=0, max_value=60).map(_random_automaton)


def _relabelled(automaton: BottomUpTA, tag: str) -> BottomUpTA:
    """The same automaton with every state wrapped in a fresh name."""
    def rename(state):
        return (tag, state)

    return BottomUpTA(
        alphabet=automaton.alphabet,
        states={rename(q) for q in automaton.states},
        leaf_rules={
            symbol: {rename(q) for q in targets}
            for symbol, targets in automaton.leaf_rules.items()
        },
        rules={
            (symbol, rename(left), rename(right)): {
                rename(q) for q in targets
            }
            for (symbol, left, right), targets in automaton.rules.items()
        },
        accepting={rename(q) for q in automaton.accepting},
    )


class TestMinimizationIdempotent:
    @given(automaton=AUTOMATA)
    @settings(max_examples=40, deadline=None)
    def test_minimized_is_a_fixed_point(self, automaton):
        minimal = automaton.minimized()
        again = minimal.minimized()
        assert len(again.states) == len(minimal.states)
        assert again.n_rules() == minimal.n_rules()
        assert again.equivalent(minimal)
        # stronger than equivalence: the canonical fingerprint agrees,
        # i.e. re-minimizing yields a structurally isomorphic automaton.
        assert fingerprint(again) == fingerprint(minimal)


class TestDeterminizeKeepSubsets:
    @given(automaton=AUTOMATA, tree=btrees(max_leaves=4))
    @settings(max_examples=40, deadline=None)
    def test_preserves_acceptance(self, automaton, tree):
        det = automaton.determinized(keep_subsets=True)
        assert det.accepts(tree) == automaton.accepts(tree)

    @given(automaton=AUTOMATA)
    @settings(max_examples=25, deadline=None)
    def test_states_are_subsets_of_the_input(self, automaton):
        det = automaton.determinized(keep_subsets=True)
        original = frozenset(automaton.states)
        assert all(isinstance(state, frozenset) for state in det.states)
        assert all(state <= original for state in det.states)


class TestFingerprintStability:
    @given(automaton=AUTOMATA)
    @settings(max_examples=40, deadline=None)
    def test_renaming_is_invisible(self, automaton):
        """Equivalent deterministic automata fingerprint identically,
        whatever their states are called."""
        minimal = automaton.minimized()
        assert fingerprint(minimal.renamed()) == fingerprint(minimal)
        assert fingerprint(_relabelled(minimal, "x")) == fingerprint(minimal)

    @given(automaton=AUTOMATA)
    @settings(max_examples=30, deadline=None)
    def test_equivalent_constructions_converge(self, automaton):
        """Two different routes to the same minimal automaton agree."""
        direct = automaton.minimized()
        via_det = automaton.determinized().minimized()
        assert fingerprint(direct) == fingerprint(via_det)

    def test_different_languages_differ(self):
        tau = BottomUpTA(
            alphabet=ALPHA,
            states={"ok"},
            leaf_rules={"a": {"ok"}},
            rules={(s, "ok", "ok"): {"ok"} for s in ("f", "g")},
            accepting={"ok"},
        )
        assert fingerprint(tau.minimized()) \
            != fingerprint(tau.complemented().minimized())

    def test_exact_fingerprint_sees_state_names(self):
        """The ``exact`` variant (used for keep_subsets results) must
        distinguish renamed twins that the canonical one merges."""
        automaton = _random_automaton(7).minimized()
        twin = _relabelled(automaton, "y")
        assert fingerprint(automaton) == fingerprint(twin)
        assert fingerprint(automaton, exact=True) \
            != fingerprint(twin, exact=True)
