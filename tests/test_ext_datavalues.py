"""Section 5 extensions: data values, unary predicates, independent joins."""

import pytest

from repro.errors import UndecidableError
from repro.ext import (
    Comparison,
    Database,
    DataDocument,
    Dept,
    ExtendedPebbleTransducer,
    Person,
    WorksIn,
    abstract_by_predicates,
    abstract_view_transducer,
    database_document,
    export_join,
    input_dtd,
    predicate_constants,
    require_join_free,
    view_dtd,
)
from repro.pebble import copy_transducer, output_contains, output_language
from repro.trees import RankedAlphabet, encode, u
from repro.typecheck import typecheck


class TestUnaryPredicates:
    def test_two_predicates_four_constants(self):
        assert len(predicate_constants(2)) == 4
        assert predicate_constants(0) == {"d"}

    def test_abstraction_relabels_values(self):
        document = DataDocument(
            u("r", u("v"), u("v")),
            values={(0,): "42", (1,): "Smith"},
        )
        bigger_than_5 = lambda value: value.isdigit() and int(value) > 5
        like_smith = lambda value: "Smith" in value
        abstracted = abstract_by_predicates(
            document, [bigger_than_5, like_smith]
        )
        assert abstracted == u("r", u("d#10"), u("d#01"))

    def test_abstraction_leaves_structure(self):
        document = DataDocument(u("r", u("x", u("v"))), values={(0, 0): "q"})
        abstracted = abstract_by_predicates(document, [])
        assert abstracted.label == "r"
        assert abstracted.subtree((0,)).label == "x"

    def test_values_only_on_leaves(self):
        with pytest.raises(ValueError):
            DataDocument(u("r", u("x", u("v"))), values={(0,): "oops"})


class TestJoins:
    def test_non_independent_join_refused(self):
        alpha = RankedAlphabet(leaves={"a", "b"}, internals={"f"})
        machine = ExtendedPebbleTransducer(
            base=copy_transducer(alpha),
            comparisons=[Comparison("q", 1, "q1", "q2")],
            independent=False,
        )
        with pytest.raises(UndecidableError):
            require_join_free(machine)

    def test_independent_join_allowed(self):
        alpha = RankedAlphabet(leaves={"a", "b"}, internals={"f"})
        machine = ExtendedPebbleTransducer(
            base=copy_transducer(alpha),
            comparisons=[Comparison("q", 1, "q1", "q2")],
            independent=True,
        )
        require_join_free(machine)  # no exception

    def test_abstract_adds_guesses(self):
        alpha = RankedAlphabet(leaves={"a", "b"}, internals={"f"})
        machine = ExtendedPebbleTransducer(
            base=copy_transducer(alpha),
            comparisons=[Comparison("q", 1, "q1", "q2")],
            independent=True,
        )
        abstracted = machine.abstract()
        assert not abstracted.is_deterministic()
        actions = abstracted.actions_for("a", "q", ())
        targets = {
            action.target
            for action in actions
            if hasattr(action, "target")
        }
        assert {"q1", "q2"} <= targets


class TestRelationalExport:
    DB = Database(
        persons=[Person("p1", "Alice"), Person("p2", "Bob")],
        worksin=[WorksIn("p1", "d1"), WorksIn("p2", "d2"),
                 WorksIn("p9", "d1")],
        depts=[Dept("d1", "Sales"), Dept("d2", "Eng")],
    )

    def test_reference_join(self):
        view = export_join(self.DB)
        assert len(view.children) == 2  # p9 dangles
        assert view_dtd().is_valid(view)

    def test_keys_enforced(self):
        with pytest.raises(ValueError):
            Database(
                persons=[Person("p", "x"), Person("p", "y")],
                worksin=[],
                depts=[],
            )

    def test_document_encoding_valid(self):
        assert input_dtd().is_valid(database_document(self.DB))

    def test_abstraction_covers_concrete_view(self):
        machine = abstract_view_transducer()
        document = encode(database_document(self.DB))
        assert output_contains(machine, document, encode(export_join(self.DB)))

    def test_abstraction_outputs_are_row_subsets(self):
        machine = abstract_view_transducer()
        document = encode(database_document(self.DB))
        language = output_language(machine, document)
        from repro.trees import decode

        sizes = sorted(
            len(decode(tree).children) for tree in language.generate(10)
        )
        assert sizes == [0, 1, 2, 3]

    def test_bounded_typecheck_against_view_dtd(self):
        machine = abstract_view_transducer()
        result = typecheck(machine, input_dtd(), view_dtd(),
                           method="bounded", max_inputs=10)
        assert result.ok
