"""Robustness on adversarial tree shapes: very deep and very wide inputs.

The encode/decode pair, the XML parser/serializer, tree equality/hashing
and the transducer evaluator are all iterative, so documents far deeper
than Python's default recursion limit (~1000 frames) must round-trip
without ``RecursionError`` — and in roughly linear time.  These tests do
NOT raise ``sys.setrecursionlimit``; surviving the default limit is the
point.
"""

import sys
import time

from hypothesis import given, settings

from repro.pebble import copy_transducer, evaluate
from repro.trees import UTree, decode, encode, encoded_alphabet
from repro.xmlio import parse_xml, to_xml

from conftest import utrees

#: Node count well past the default recursion limit.
N = 5000

#: Generous wall-clock ceiling: linear algorithms finish in well under a
#: second here; an accidentally quadratic or recursive-with-retries one
#: does not.
WALL_CLOCK_LIMIT = 30.0


def deep_chain(depth: int) -> UTree:
    tree = UTree("a")
    for _ in range(depth):
        tree = UTree("a", [tree])
    return tree


def wide_node(width: int) -> UTree:
    return UTree("r", [UTree("a") for _ in range(width)])


def test_recursion_limit_is_default():
    # guard: if some import raised the limit, these tests prove nothing
    assert sys.getrecursionlimit() <= 10_000


def test_deep_encode_decode_roundtrip():
    tree = deep_chain(N)
    started = time.perf_counter()
    encoded = encode(tree)
    decoded = decode(encoded)
    assert decoded == tree
    assert time.perf_counter() - started < WALL_CLOCK_LIMIT


def test_wide_encode_decode_roundtrip():
    tree = wide_node(N)
    encoded = encode(tree)
    assert decode(encoded) == tree


def test_deep_equality_and_hash():
    one, other = deep_chain(N), deep_chain(N)
    assert one is not other
    assert one == other
    assert hash(one) == hash(other)
    assert one != deep_chain(N - 1)
    encoded_one, encoded_other = encode(one), encode(other)
    assert encoded_one == encoded_other
    assert hash(encoded_one) == hash(encoded_other)


def test_deep_xml_parse_and_serialize_roundtrip():
    text = "<a>" * N + "<a/>" + "</a>" * N
    started = time.perf_counter()
    tree = parse_xml(text)
    assert tree.height() == N
    assert to_xml(tree) == text
    assert parse_xml(to_xml(tree, indent=2)) == tree
    assert time.perf_counter() - started < WALL_CLOCK_LIMIT


def test_wide_xml_parse_and_serialize_roundtrip():
    text = "<r>" + "<a/>" * N + "</r>"
    tree = parse_xml(text)
    assert len(tree.children) == N
    assert to_xml(tree) == text


def test_evaluate_copy_on_deep_tree():
    # the encoded chain is ~2N deep; the iterative evaluator must copy it
    tree = deep_chain(1500)
    machine = copy_transducer(encoded_alphabet({"a"}))
    encoded = encode(tree)
    started = time.perf_counter()
    output = evaluate(machine, encoded, max_steps=None)
    assert output == encoded
    assert time.perf_counter() - started < WALL_CLOCK_LIMIT


@settings(max_examples=50, deadline=None)
@given(utrees())
def test_roundtrips_agree_on_random_trees(tree):
    assert decode(encode(tree)) == tree
    assert parse_xml(to_xml(tree)) == tree
    assert parse_xml(to_xml(tree, indent=1)) == tree
