"""The error taxonomy and its CLI exit-code contract.

Every failure anywhere in the repo must surface as a ``ReproError``
subclass, and the CLI must translate outcomes to the documented codes:

====  =========================================================
code  meaning
====  =========================================================
0     success (typechecks / document valid / batch all-ok)
1     type error or invalid document — the *analysis* rejected
2     usage or input error (bad flags, malformed DTD/XML/manifest)
3     a resource budget was exhausted with no fallback
4     a worker crashed or was killed at a hard limit
5     the service shed the job before execution (retryable)
6     the audit refuted the verdict (``miscompiled``)
====  =========================================================

The ``shed`` path (exit 5) is exercised end-to-end in
``tests/test_service_overload.py`` — it only exists behind the daemon.
The ``miscompiled`` path (exit 6) is exercised in ``tests/test_audit.py``
and ``tests/test_audit_chaos.py``; the status-severity ordering test
below pins where it ranks.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import (
    EXIT_CRASHED,
    EXIT_EXHAUSTED,
    EXIT_OK,
    EXIT_TYPE_ERROR,
    EXIT_USAGE,
    AutomatonError,
    FaultInjected,
    ReproError,
    ResourceExhausted,
    SupervisorError,
    WorkerCrashed,
    XMLParseError,
    exit_code_for,
)

TINY_DTD = "doc := item*\nitem :="
IDENTITY_SHEET = (
    '<xsl:template match="doc"><doc><xsl:apply-templates/></doc>'
    "</xsl:template>"
    '<xsl:template match="item"><item/></xsl:template>'
)


def test_every_domain_error_is_a_repro_error():
    for cls in (AutomatonError, FaultInjected, ResourceExhausted,
                SupervisorError, WorkerCrashed, XMLParseError):
        assert issubclass(cls, ReproError)


@pytest.mark.parametrize(
    ("error", "code"),
    [
        (WorkerCrashed("died", exitcode=-9), EXIT_CRASHED),
        (ResourceExhausted("steps"), EXIT_EXHAUSTED),
        (XMLParseError("bad tag"), EXIT_USAGE),
        (SupervisorError("duplicate id"), EXIT_USAGE),
        (FaultInjected("chaos"), EXIT_USAGE),
        (OSError("no such file"), EXIT_USAGE),
        (ValueError("not ours"), EXIT_CRASHED),
        (KeyboardInterrupt(), EXIT_CRASHED),
    ],
)
def test_exit_code_for_is_total(error, code):
    assert exit_code_for(error) == code


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "tiny.dtd").write_text(TINY_DTD)
    (tmp_path / "identity.xsl").write_text(IDENTITY_SHEET)
    (tmp_path / "valid.xml").write_text("<doc><item/></doc>")
    (tmp_path / "invalid.xml").write_text("<doc><bad/></doc>")
    (tmp_path / "broken.xml").write_text("<doc><item></doc>")
    return tmp_path


def test_cli_validate_exit_codes(workspace, capsys):
    dtd = str(workspace / "tiny.dtd")
    assert main(["validate", "--dtd", dtd,
                 str(workspace / "valid.xml")]) == EXIT_OK
    assert main(["validate", "--dtd", dtd,
                 str(workspace / "invalid.xml")]) == EXIT_TYPE_ERROR
    assert main(["validate", "--dtd", dtd,
                 str(workspace / "broken.xml")]) == EXIT_USAGE
    assert main(["validate", "--dtd", dtd,
                 str(workspace / "missing.xml")]) == EXIT_USAGE
    capsys.readouterr()


def test_cli_typecheck_exhausted_without_fallback(workspace, capsys):
    code = main([
        "typecheck",
        "--input-dtd", str(workspace / "tiny.dtd"),
        "--output-dtd", str(workspace / "tiny.dtd"),
        "--max-steps", "3", "--no-fallback",
        str(workspace / "identity.xsl"),
    ])
    assert code == EXIT_EXHAUSTED
    assert "exhausted" in capsys.readouterr().err


def test_cli_batch_exit_code_is_most_severe_status(workspace, capsys):
    manifest = workspace / "jobs.jsonl"
    ok_job = {"id": "ok", "kind": "validate",
              "params": {"dtd_text": TINY_DTD,
                         "document_text": "<doc><item/></doc>"}}
    bad_job = {"id": "bad", "kind": "validate",
               "params": {"dtd_text": TINY_DTD,
                          "document_text": "<doc><bad/></doc>"}}

    manifest.write_text(json.dumps(ok_job) + "\n")
    assert main(["batch", str(manifest),
                 "--results", str(workspace / "r1.jsonl")]) == EXIT_OK

    manifest.write_text(
        json.dumps(ok_job) + "\n" + json.dumps(bad_job) + "\n"
    )
    assert main(["batch", str(manifest),
                 "--results",
                 str(workspace / "r2.jsonl")]) == EXIT_TYPE_ERROR
    capsys.readouterr()


def test_miscompiled_is_the_most_severe_status():
    from repro.errors import EXIT_MISCOMPILED
    from repro.runtime.supervisor import (
        _SEVERITY,
        _STATUS_EXIT,
        CRASHED,
        MISCOMPILED,
        STATUSES,
    )

    assert MISCOMPILED in STATUSES
    assert _STATUS_EXIT[MISCOMPILED] == EXIT_MISCOMPILED == 6
    # worse than a crash: every other failure is honest about failing
    assert _SEVERITY.index(MISCOMPILED) < _SEVERITY.index(CRASHED)
    assert set(_SEVERITY) == set(STATUSES)


def test_cli_batch_miscompiled_exit_code(workspace, capsys):
    manifest = workspace / "flip.jsonl"
    manifest.write_text(json.dumps({
        "id": "flip", "kind": "typecheck",
        "params": {"stylesheet_text": IDENTITY_SHEET,
                   "input_dtd_text": TINY_DTD,
                   "output_dtd_text": TINY_DTD},
    }) + "\n")
    plan = workspace / "plan.json"
    plan.write_text(json.dumps(
        {"points": {"audit:flip-verdict": {"action": "exception"}}}
    ))
    from repro.errors import EXIT_MISCOMPILED

    code = main(["batch", str(manifest),
                 "--results", str(workspace / "rflip.jsonl"),
                 "--audit", "witness", "--faults", str(plan)])
    assert code == EXIT_MISCOMPILED
    capsys.readouterr()


def test_cli_batch_usage_errors(workspace, capsys):
    results = str(workspace / "r.jsonl")
    missing = str(workspace / "nope.jsonl")
    assert main(["batch", missing, "--results", results]) == EXIT_USAGE

    mangled = workspace / "mangled.jsonl"
    mangled.write_text('{"id": "a", "kind": "validate"\n')
    assert main(["batch", str(mangled),
                 "--results", results]) == EXIT_USAGE

    empty = workspace / "empty.jsonl"
    empty.write_text("")
    assert main(["batch", str(empty), "--results", results]) == EXIT_USAGE
    capsys.readouterr()
