"""Differential tests for the automata memo table.

Every memoized operation is run three ways — cache disabled (the
reference), cache enabled on a cold table, and again on the now-warm
table — and the results must be language-equivalent.  The warm run must
actually hit the table, so these tests also pin the fingerprinting: a
key that failed to match its own inputs would show up as a miss here.

The typechecking scenarios mirror the E10 worked-example suite
(copy/E02, the XSLT wrapper/E04, Q2 against its DTDs/E09-E10) and
assert the verdict is identical with and without the cache.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import BottomUpTA
from repro.lang import (
    Apply,
    Out,
    Stylesheet,
    Template,
    q2_stylesheet,
    xslt_to_transducer,
)
from repro.data import q1_input_dtd, q2_good_output_dtd
from repro.pebble import copy_transducer
from repro.regex import EPSILON, compile_regex, star, sym, union, concat
from repro.runtime import (
    GLOBAL_CACHE,
    cache_disabled,
    cache_stats,
    clear_cache,
)
from repro.trees import RankedAlphabet
from repro.typecheck import typecheck
from repro.xmlio import parse_dtd

ALPHA = RankedAlphabet(leaves={"a", "b"}, internals={"f", "g"})


@pytest.fixture(autouse=True, scope="module")
def _cache_on():
    """Force the memo table on (and empty) regardless of REPRO_CACHE.

    Module-scoped: hypothesis would flag a function-scoped fixture, and
    every test below clears the table itself where freshness matters.
    """
    previous = GLOBAL_CACHE.enabled
    GLOBAL_CACHE.enabled = True
    clear_cache()
    yield
    GLOBAL_CACHE.enabled = previous
    clear_cache()


def _random_automaton(seed: int) -> BottomUpTA:
    """A reproducible random bottom-up automaton over ALPHA."""
    rng = random.Random(seed)
    n_states = rng.randint(1, 3)
    states = [f"s{i}" for i in range(n_states)]
    leaf_rules = {
        symbol: {s for s in states if rng.random() < 0.6}
        for symbol in sorted(ALPHA.leaves)
    }
    rules = {}
    for symbol in sorted(ALPHA.internals):
        for left in states:
            for right in states:
                targets = {s for s in states if rng.random() < 0.35}
                if targets:
                    rules[(symbol, left, right)] = targets
    accepting = {s for s in states if rng.random() < 0.5} or {states[0]}
    return BottomUpTA(ALPHA, states, leaf_rules, rules, accepting)


AUTOMATA = st.integers(min_value=0, max_value=60).map(_random_automaton)

REGEXES = st.recursive(
    st.one_of(st.just(EPSILON), st.sampled_from(["a", "b"]).map(sym)),
    lambda sub: st.one_of(
        st.builds(concat, sub, sub),
        st.builds(union, sub, sub),
        st.builds(star, sub),
    ),
    max_leaves=5,
)


def _differential(op, *inputs):
    """Run ``op`` uncached / cold / warm; return the three results."""
    with cache_disabled():
        reference = op(*inputs)
    clear_cache()
    cold = op(*inputs)
    before = cache_stats()["hits"]
    warm = op(*inputs)
    assert cache_stats()["hits"] > before, "warm re-run never hit the table"
    return reference, cold, warm


UNARY_OPS = [
    ("determinized", lambda a: a.determinized()),
    ("determinized_subsets", lambda a: a.determinized(keep_subsets=True)),
    ("complemented", lambda a: a.complemented()),
    ("minimized", lambda a: a.minimized()),
    ("trimmed", lambda a: a.trimmed()),
]

BINARY_OPS = [
    ("intersection", lambda a, b: a.intersection(b)),
    ("union", lambda a, b: a.union(b)),
    ("difference", lambda a, b: a.difference(b)),
    ("product_xor", lambda a, b: a.product(b, lambda x, y: x != y)),
]


class TestAutomataDifferential:
    @pytest.mark.parametrize("name,op", UNARY_OPS, ids=[n for n, _ in UNARY_OPS])
    @given(automaton=AUTOMATA)
    @settings(max_examples=25, deadline=None)
    def test_unary_cached_equals_uncached(self, name, op, automaton):
        reference, cold, warm = _differential(op, automaton)
        assert reference.equivalent(cold)
        assert reference.equivalent(warm)

    @pytest.mark.parametrize("name,op", BINARY_OPS, ids=[n for n, _ in BINARY_OPS])
    @given(one=AUTOMATA, two=AUTOMATA)
    @settings(max_examples=20, deadline=None)
    def test_binary_cached_equals_uncached(self, name, op, one, two):
        reference, cold, warm = _differential(op, one, two)
        assert reference.equivalent(cold)
        assert reference.equivalent(warm)

    @given(automaton=AUTOMATA)
    @settings(max_examples=20, deadline=None)
    def test_isomorphic_twin_shares_cache_entries(self, automaton):
        """A structurally identical but distinct object must hit the same
        entry (fingerprints are structural, not ``id``-based)."""
        seed_twin = BottomUpTA(
            automaton.alphabet,
            automaton.states,
            automaton.leaf_rules,
            automaton.rules,
            automaton.accepting,
        )
        clear_cache()
        first = automaton.minimized()
        before = cache_stats()["hits"]
        second = seed_twin.minimized()
        assert cache_stats()["hits"] > before
        assert first.equivalent(second)


class TestRegexDifferential:
    @given(expr=REGEXES)
    @settings(max_examples=25, deadline=None)
    def test_compile_cached_equals_uncached(self, expr):
        reference, cold, warm = _differential(
            lambda e: compile_regex(e, alphabet={"a", "b"}), expr
        )
        assert reference.equivalent(cold)
        assert reference.equivalent(warm)

    @given(one=REGEXES, two=REGEXES)
    @settings(max_examples=15, deadline=None)
    def test_dfa_product_cached_equals_uncached(self, one, two):
        left = compile_regex(one, alphabet={"a", "b"})
        right = compile_regex(two, alphabet={"a", "b"})
        reference, cold, warm = _differential(
            lambda l, r: l.intersection(r), left, right
        )
        assert reference.equivalent(cold)
        assert reference.equivalent(warm)


def _leaves_all_a() -> BottomUpTA:
    return BottomUpTA(
        alphabet=ALPHA,
        states={"ok"},
        leaf_rules={"a": {"ok"}},
        rules={(s, "ok", "ok"): {"ok"} for s in ("f", "g")},
        accepting={"ok"},
    )


def _wrap_machine():
    sheet = Stylesheet([
        Template("doc", [Out("D", [Apply()])]),
        Template("sec", [Out("S", [Apply()])]),
        Template("par", [Out("P")]),
    ])
    return xslt_to_transducer(sheet, tags={"doc", "sec", "par"},
                              root_tag="doc")


def _typecheck_scenarios():
    wrap_in = parse_dtd("doc := sec*\nsec := par*\npar :=")
    wrap_out_good = parse_dtd("D := S*\nS := P*\nP :=")
    wrap_out_bad = parse_dtd("D := S.S*\nS := P*\nP :=")
    return [
        # E02/E10: the copy transducer typechecks against tau -> tau ...
        ("copy_ok", copy_transducer(ALPHA), _leaves_all_a(),
         _leaves_all_a(), True),
        # ... and fails against tau -> complement(tau).
        ("copy_bad", copy_transducer(ALPHA), _leaves_all_a(),
         _leaves_all_a().complemented(), False),
        # E04/E10: the wrapping stylesheet against matching DTDs ...
        ("wrap_ok", _wrap_machine(), wrap_in, wrap_out_good, True),
        # ... and against a DTD that forbids the empty document.
        ("wrap_bad", _wrap_machine(), wrap_in, wrap_out_bad, False),
        # E09/E10: XSLT Q2 against its good output DTD.
        ("q2_ok",
         xslt_to_transducer(q2_stylesheet(), tags={"root", "a"},
                            root_tag="root"),
         q1_input_dtd(), q2_good_output_dtd(), True),
    ]


class TestTypecheckDifferential:
    @pytest.mark.parametrize(
        "name,machine,tau1,tau2,expect_ok",
        _typecheck_scenarios(),
        ids=[row[0] for row in _typecheck_scenarios()],
    )
    def test_verdict_identical_with_and_without_cache(
        self, name, machine, tau1, tau2, expect_ok
    ):
        with cache_disabled():
            reference = typecheck(machine, tau1, tau2, method="exact")
        clear_cache()
        cold = typecheck(machine, tau1, tau2, method="exact")
        warm = typecheck(machine, tau1, tau2, method="exact")

        for result in (reference, cold, warm):
            assert result.ok is expect_ok
            assert result.method == "exact"
        assert (reference.counterexample_input is None) \
            == (cold.counterexample_input is None) \
            == (warm.counterexample_input is None)

        # the stats block reflects the cache's involvement
        assert reference.stats["cache"]["enabled"] is False
        assert cold.stats["cache"]["enabled"] is True
        assert warm.stats["cache"]["hits"] > 0
