#!/usr/bin/env python3
"""Example 4.2, reproduced: forward type inference fails, inverse
type inference succeeds.

Q1 is the XML-QL query::

    <result> WHERE <root> <a> $X </a> <a> $Y </a> </root>
    CONSTRUCT <b/> </result>

It maps a^n to b^(n^2) — a non-regular image, so *no* DTD describes the
output exactly (forward inference must approximate).  But the *inverse*
is regular: the inputs whose outputs have an even number of b's
(output DTD ``result := (b.b)*``) are exactly ``root := (a.a)*``.

This script demonstrates both facts with the 2-pebble transducer for Q1.

Run:  python examples/inverse_inference.py
"""

from repro.data import q1_input_dtd, q1_inverse_dtd, q1_output_even_dtd
from repro.data.generators import flat_document
from repro.lang import q1_transducer
from repro.pebble import evaluate
from repro.trees import decode, encode
from repro.typecheck import typecheck


def main() -> None:
    machine = q1_transducer()
    print("Q1 as a k-pebble transducer:", machine.stats())

    # -- the non-regular image: a^n -> b^(n^2) ------------------------------
    print("\nforward image (not a regular set — no exact output DTD):")
    for n in range(6):
        document = flat_document("root", "a", n)
        output = decode(evaluate(machine, encode(document)))
        print(f"  a^{n} -> b^{len(output.children)}")

    # -- inverse inference: which inputs give an even number of b's? --------
    even = q1_output_even_dtd()      # result := (b.b)*
    print("\nbounded typecheck of Q1 : (root := a*) -> (result := (b.b)*):")
    result = typecheck(machine, q1_input_dtd(), even,
                       method="bounded", max_inputs=8)
    print("  ok:", result.ok)
    witness = decode(result.counterexample_input)
    print(f"  counterexample: a^{len(witness.children)} "
          f"(odd n makes n^2 odd)")

    print("\n...but from the paper's inverse type (root := (a.a)*):")
    result = typecheck(machine, q1_inverse_dtd(), even,
                       method="bounded", max_inputs=8)
    print("  ok:", result.ok,
          f"({result.stats['inputs_checked']} even-length inputs checked)")

    # spot-check the inverse-type characterization input by input
    print("\nper-input check T(a^n) ⊆ (b.b)* vs n even:")
    from repro.pebble import output_language
    from repro.typecheck import as_automaton

    not_even = as_automaton(even, machine.output_alphabet).complemented()
    for n in range(8):
        document = encode(flat_document("root", "a", n))
        bad = output_language(machine, document).intersection(not_even)
        conforms = bad.is_empty()
        print(f"  n={n}: conforms={conforms}  (n even: {n % 2 == 0})")
        assert conforms == (n % 2 == 0)


if __name__ == "__main__":
    main()
