#!/usr/bin/env python3
"""Figure 2 / Example 3.7: rotating a tree around a pivot leaf.

A single pebble suffices for this "complex tree transformation": the
machine finds the first leaf labeled ``s`` in pre-order, makes it the
new root, and re-emits the tree inside-out while climbing, inserting the
two fresh nodes ``m`` and ``n``.  As the paper notes, on right-linear
trees this reverses strings.

Run:  python examples/rotation.py
"""

from repro.pebble import evaluate, rotation_transducer
from repro.trees import RankedAlphabet, leaf, node


def main() -> None:
    alphabet = RankedAlphabet(leaves={"s", "b", "c"}, internals={"r", "g"})
    machine = rotation_transducer(alphabet)
    print("rotation transducer:", machine.stats())

    print("\nFigure 2 instances:")
    for tree in [
        node("r", leaf("s"), leaf("b")),
        node("r", node("g", leaf("c"), leaf("s")), leaf("b")),
        node("r", node("g", node("g", leaf("s"), leaf("c")), leaf("b")),
             leaf("c")),
    ]:
        output = evaluate(machine, tree)
        print(f"  {tree}\n    -> {output}")
        assert output.size() == tree.size() + 2  # exactly m and n added

    print("\nstring reversal (right-linear encoding):")
    strings = RankedAlphabet(leaves={"s", "x"},
                             internals={"r", "c1", "c2", "c3"})
    reverser = rotation_transducer(strings)
    word = ["r", "c1", "c2", "c3"]
    tree = leaf("s")
    for symbol in reversed(word):
        tree = node(symbol, leaf("x"), tree)
    output = evaluate(reverser, tree)
    spine = []
    current = output.right
    while current is not None and not current.is_leaf:
        spine.append(current.label)
        current = current.left
    print(f"  {''.join(word)}  ->  {''.join(spine)}")
    assert spine == list(reversed(word))


if __name__ == "__main__":
    main()
