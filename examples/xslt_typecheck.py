#!/usr/bin/env python3
"""Example 4.3, reproduced — and typechecked *exactly*.

Q2 is the XSLT query of the paper: for input DTD ``root := a*`` it maps
``a^n`` to ``b a^n b a^n b a^n``, another non-regular image.  We compile
the stylesheet to a 1-pebble transducer and run the full Theorem 4.4
decision procedure against two output DTDs: one it satisfies, one it
does not — with a concrete counterexample (input document + ill-typed
output document) in the failing case.

Run:  python examples/xslt_typecheck.py
"""

from repro.data import q1_input_dtd, q2_good_output_dtd, q2_tight_output_dtd
from repro.lang import apply_stylesheet, q2_stylesheet, xslt_to_transducer
from repro.trees import decode, u
from repro.typecheck import typecheck
from repro.xmlio import to_xml


def main() -> None:
    sheet = q2_stylesheet()
    machine = xslt_to_transducer(sheet, tags={"root", "a"}, root_tag="root")
    print("Q2 compiled to a 1-pebble transducer:", machine.stats())

    print("\nthe transformation (via the stylesheet interpreter):")
    for n in range(4):
        document = u("root", *[u("a")] * n)
        output = apply_stylesheet(sheet, document)
        print(f"  a^{n} -> {''.join(c.label for c in output.children)}")

    print("\nexact typechecking (Theorem 4.4 pipeline):")
    good = q2_good_output_dtd()   # result := b.a*.b.a*.b.a*
    result = typecheck(machine, q1_input_dtd(), good, method="exact")
    print(f"  against {good.content['result']}: ok={result.ok} "
          f"({result.stats['seconds']:.2f}s)")

    tight = q2_tight_output_dtd()  # result := b.a*.b.a*.b
    result = typecheck(machine, q1_input_dtd(), tight, method="exact")
    print(f"  against {tight.content['result']}: ok={result.ok} "
          f"({result.stats['seconds']:.2f}s)")
    if not result.ok:
        print("  counterexample input: ",
              to_xml(decode(result.counterexample_input)))
        print("  its ill-typed output: ",
              to_xml(decode(result.counterexample_output)))


if __name__ == "__main__":
    main()
