<xsl:template match="doc">
  <out>
    <xsl:apply-templates/>
  </out>
</xsl:template>
<xsl:template match="item">
  <thing/>
</xsl:template>
