#!/usr/bin/env python3
"""Quickstart: the full pipeline of the paper on one page.

1. Parse an XML document and a DTD, validate (Section 2).
2. Encode it as a binary tree (Figure 1) and run tree automata on it.
3. Build a k-pebble transducer (Example 3.3's copy machine) and run it.
4. Typecheck the transducer exactly (Theorem 4.4) and look at a
   counterexample when typechecking fails.

Run:  python examples/quickstart.py
"""

from repro.automata import dtd_to_automaton
from repro.pebble import copy_transducer, evaluate
from repro.trees import decode, encode
from repro.typecheck import typecheck
from repro.xmlio import parse_dtd, parse_xml, to_xml


def main() -> None:
    # -- 1. documents and DTDs (the paper's running example) ---------------
    document = parse_xml("<a> <b></b> <b></b> <c><d></d></c> <e></e> </a>")
    dtd = parse_dtd(
        """
        a := b*.c.e
        b :=
        c := d*
        d :=
        e :=
        """
    )
    print("document:       ", to_xml(document))
    print("valid w.r.t DTD:", dtd.is_valid(document))

    # -- 2. the binary encoding and the type automaton ---------------------
    encoded = encode(document)
    print("encoded tree:   ", encoded)
    automaton = dtd_to_automaton(dtd)
    print("automaton accepts encode(document):", automaton.accepts(encoded))
    print("round-trip decode ok:", decode(encoded) == document)

    # -- 3. a k-pebble transducer (Example 3.3) ----------------------------
    copier = copy_transducer(automaton.alphabet)
    output = evaluate(copier, encoded)
    print("copy transducer output == input:", output == encoded)

    # -- 4. typechecking (Theorem 4.4) --------------------------------------
    ok = typecheck(copier, dtd, dtd, method="exact")
    print("copy typechecks DTD -> DTD:", ok.ok,
          f"({ok.stats['seconds']:.3f}s)")

    tighter = parse_dtd(
        """
        a := b.c.e
        b :=
        c := d*
        d :=
        e :=
        """
    )
    bad = typecheck(copier, dtd, tighter, method="exact")
    print("copy typechecks DTD -> tighter DTD:", bad.ok)
    if not bad.ok:
        witness = decode(bad.counterexample_input)
        print("  counterexample input:", to_xml(witness))
        print("  its output violates: ",
              tighter.validation_errors(witness)[0][1])


if __name__ == "__main__":
    main()
