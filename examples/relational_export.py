#!/usr/bin/env python3
"""Section 5's data-value example: exporting Person ⋈ WorksIn ⋈ Dept to XML.

Joins on data values make typechecking undecidable in general, but this
three-way key join performs only *independent* comparisons (each inner
loop stops at its first match), so the comparisons can be replaced by
nondeterministic guesses: the abstract transducer T' over ``d``-leaves
has exactly the outputs the concrete query can produce over all
databases, and the Section 4 machinery typechecks it.

Run:  python examples/relational_export.py
"""

from repro.ext import (
    Database,
    Dept,
    Person,
    WorksIn,
    abstract_view_transducer,
    database_document,
    export_join,
    input_dtd,
    view_dtd,
)
from repro.pebble import enumerate_outputs, output_contains
from repro.trees import decode, encode
from repro.typecheck import typecheck
from repro.xmlio import to_xml


def main() -> None:
    database = Database(
        persons=[Person("p1", "Alice"), Person("p2", "Bob")],
        worksin=[WorksIn("p1", "d1"), WorksIn("p2", "d2"),
                 WorksIn("p9", "d1")],       # p9 dangles: no Person row
        depts=[Dept("d1", "Sales"), Dept("d2", "Eng")],
    )

    view = export_join(database)
    print("concrete view:", to_xml(view))
    print("valid w.r.t. the view DTD:", view_dtd().is_valid(view))

    document = database_document(database)
    print("\nabstract input document:", to_xml(document))

    machine = abstract_view_transducer()
    encoded = encode(document)
    print("\nT' covers the concrete view:",
          output_contains(machine, encoded, encode(view)))
    print("T' possible outputs (row counts):",
          sorted(len(decode(t).children)
                 for t in enumerate_outputs(machine, encoded, 10)))

    print("\nexact typechecking of T' against the view DTD:")
    result = typecheck(machine, input_dtd(), view_dtd(), method="exact")
    print("  ok:", result.ok, f"({result.stats['seconds']:.2f}s)")

    # and a failing variant: claim every work row joins (it does not)
    from repro.xmlio import parse_dtd

    strict = parse_dtd(
        "view := row.row.row\nrow := person.dept\nperson := d\ndept := d\nd :="
    )
    result = typecheck(machine, input_dtd(), strict, method="bounded",
                       max_inputs=12)
    print("  against 'exactly three rows':", result.ok)


if __name__ == "__main__":
    main()
