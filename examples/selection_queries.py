#!/usr/bin/env python3
"""Selection queries (Example 3.5 / Section 5) on a bibliography.

A selection query extracts all nodes reachable by a regular path
expression and returns copies of them — the paper's "most essential
common denominator of existing XML query languages".  The compiler
produces a *two-pebble* transducer: pebble 1 enumerates candidates in
pre-order; pebble 2 climbs from each candidate to the root, running the
reversed path regex, then copies matched subtrees.

Run:  python examples/selection_queries.py
"""

from repro.data import bibliography_doc, bibliography_dtd
from repro.lang import match_count, pattern, selection_transducer
from repro.pebble import evaluate
from repro.trees import decode, encode
from repro.typecheck import typecheck
from repro.xmlio import parse_dtd, to_xml


def main() -> None:
    dtd = bibliography_dtd()
    document = bibliography_doc()
    print("document:", to_xml(document))
    assert dtd.is_valid(document)

    tags = dtd.symbols
    queries = ["bib.book.author", "bib.book.title", "bib.book.publisher",
               "bib.book.(title|author)"]
    for path in queries:
        machine = selection_transducer(path, tags, root_symbols={"bib"})
        output = decode(evaluate(machine, encode(document)))
        labels = [child.label for child in output.children]
        print(f"\n  //{path}  ->  {labels}")
        # cross-check against the declarative pattern semantics
        assert len(labels) == match_count(pattern(path), document)

    # -- typechecking a selection query (bounded engine) --------------------
    print("\ntypechecking: do author selections always yield author lists?")
    machine = selection_transducer("bib.book.author", tags,
                                   root_symbols={"bib"})
    good = parse_dtd("result := author*\nauthor :=")
    result = typecheck(machine, dtd, good, method="bounded", max_inputs=12)
    print("  result := author*  ->", result.ok,
          f"({result.stats['inputs_checked']} documents checked)")

    strict = parse_dtd("result := author+\nauthor :=")
    result = typecheck(machine, dtd, strict, method="bounded", max_inputs=12)
    print("  result := author+  ->", result.ok, "(a book may lack authors)")
    if not result.ok:
        print("  counterexample:",
              to_xml(decode(result.counterexample_input)))

    # -- the Section 5 fast path: binding-type inference, exact -------------
    from repro.typecheck import binding_type, typecheck_selection

    print("\nthe dedicated exact checker (binding-type inference, [28]):")
    fast = typecheck_selection("bib.book.author", dtd,
                               parse_dtd("author :="))
    print("  bindings of //bib.book.author all conform to 'author':",
          fast.ok)
    wrong = typecheck_selection("bib.book", dtd, parse_dtd("author :="))
    print("  bindings of //bib.book conform to 'author':", wrong.ok,
          "- witness:", to_xml(decode(wrong.witness_binding)))
    books = binding_type(dtd, "bib.book")
    print("  binding type of $X in //bib.book has",
          len(books.states), "automaton states; sample members:",
          [to_xml(decode(t)) for t in books.generate(2)])


if __name__ == "__main__":
    main()
