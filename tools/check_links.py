#!/usr/bin/env python
"""Check relative markdown links (and their anchors) in the docs tree.

Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for inline
markdown links ``[text](target)``.  External targets (``http(s)://``,
``mailto:``) are ignored; everything else must resolve:

* a relative path must exist on disk (relative to the linking file);
* a ``#fragment`` on a markdown target must match a heading in that
  file (GitHub slugification) or an explicit ``<a name="...">`` anchor;
* a bare ``#fragment`` must match an anchor in the linking file itself.

Exit status 1 with one line per broken link, 0 when clean — the CI docs
job gates on it.  Run locally::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
DOC_GLOBS = ["docs/*.md"]

#: Inline links, skipping image embeds.  Deliberately simple: no
#: reference-style links are used in this repo.
_LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXPLICIT_ANCHOR = re.compile(r"<a\s+name=\"([^\"]+)\"")
_EXTERNAL = ("http://", "https://", "mailto:")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)       # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = re.sub(r"<[^>]+>", "", text)               # strip inline HTML
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    text = path.read_text(encoding="utf-8")
    anchors = {_slugify(h) for h in _HEADING.findall(text)}
    anchors.update(_EXPLICIT_ANCHOR.findall(text))
    return anchors


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(REPO_ROOT)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        line = text.count("\n", 0, match.start()) + 1
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            problems.append(f"{rel}:{line}: broken link: {target}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in _anchors(dest):
                problems.append(
                    f"{rel}:{line}: missing anchor #{fragment} "
                    f"in {dest.relative_to(REPO_ROOT)}"
                )
    return problems


def main() -> int:
    files = [REPO_ROOT / name for name in DOC_FILES]
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    missing = [f for f in files if not f.exists()]
    if missing:
        for path in missing:
            print(f"error: expected doc file missing: {path}",
                  file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
